#pragma once

#include <concepts>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/address_map.hpp"
#include "sim/cache.hpp"
#include "sim/flat_cache.hpp"
#include "sim/platform.hpp"
#include "sim/prefetcher.hpp"

/// Trace-driven simulation of a full platform memory hierarchy.
///
/// A memory system is built from a Platform and consumes the raw memory
/// access stream of an instrumented kernel. It walks each access through
/// the tier stack — standard caches, the eDRAM victim L4, the MCDRAM
/// memory-side cache — and accounts bytes served by every tier and device.
/// This exact simulation validates the analytical TrafficModel used for
/// large sweeps (see tests/test_model_validation.cpp).
///
/// The walk is a class template over the per-tier cache type:
///
///   MemorySystem          = MemorySystemT<FlatCache>            (hot path)
///   ReferenceMemorySystem = MemorySystemT<SetAssociativeCache>  (reference)
///
/// Both instantiations are behavior-identical — the differential suite in
/// tests/test_sim_differential.cpp drives them with the same traces and
/// requires equal stats and reports. The flat instantiation additionally
/// takes fast paths the reference never compiles (`if constexpr` on
/// FastPathCache): an inline L1 probe in access_range() that skips the
/// full tier walk on an L1 hit, a miss continuation that enters the walk
/// without re-scanning the L1 set, and the allocation-free
/// StridePrefetcher::observe_into() entry. Sanitizer CI exercises the
/// reference instantiation so TSan/ASan keep seeing the map-based model.
namespace opm::sim {

/// Byte accounting for one tier or device after a simulation run.
struct TierTraffic {
  std::string name;
  std::uint64_t hits = 0;        ///< line requests satisfied here
  std::uint64_t bytes_served = 0;  ///< hits * line_size
  std::uint64_t writebacks = 0;  ///< dirty lines pushed down from here
  std::uint64_t prefetches = 0;  ///< prefetch fills served by this device

  bool operator==(const TierTraffic&) const = default;
};

/// Full traffic picture of a simulated execution.
struct TrafficReport {
  std::vector<TierTraffic> tiers;    ///< one per cache tier, L1 first
  std::vector<TierTraffic> devices;  ///< one per backing device
  std::uint64_t total_accesses = 0;  ///< line-granular demand accesses
  std::uint64_t total_bytes = 0;     ///< demand bytes requested by the core

  /// Bytes that had to come from any backing device (the "DRAM traffic").
  std::uint64_t device_bytes() const;
  /// True when a tier or device with this exact name exists.
  bool has(const std::string& name) const;
  /// Bytes served by the named tier or device. Throws std::out_of_range
  /// for unknown names — a typo in figure code must not silently zero a
  /// series; probe with has() when absence is expected.
  std::uint64_t bytes_from(const std::string& name) const;

  bool operator==(const TrafficReport&) const = default;
};

/// Cache types eligible for the batched fast paths: a try_hit() probe
/// that counts/refreshes on a hit but leaves the cache untouched on a
/// miss, the matching miss_after_probe() continuation that takes the miss
/// without re-scanning the set try_hit just proved empty, and an
/// install_absent() that fills a line a contains() sweep proved absent.
template <class C>
concept FastPathCache = requires(C c, std::uint64_t addr, bool is_write) {
  { c.try_hit(addr, is_write) } -> std::same_as<bool>;
  { c.miss_after_probe(addr, is_write) } -> std::same_as<CacheResult>;
  { c.install_absent(addr, is_write) } -> std::same_as<CacheResult>;
};

template <class CacheT>
class MemorySystemT {
 public:
  explicit MemorySystemT(const Platform& platform);
  ~MemorySystemT();  // flushes this system's line count to the metrics registry

  MemorySystemT(const MemorySystemT&) = delete;
  MemorySystemT& operator=(const MemorySystemT&) = delete;

  /// Simulates one demand access of `size` bytes starting at `addr`
  /// (split into line-granular requests). `is_write` marks stores.
  void access(std::uint64_t addr, std::uint32_t size, bool is_write) {
    access_range(addr, size, is_write);
  }

  /// Batched demand access: the hot entry. Set index, tag, and line split
  /// are computed once per line; with a FastPathCache an L1 hit is counted
  /// inline without entering the tier walk, and an L1 miss continues with
  /// miss_after_probe() instead of re-scanning the set. A prefetcher, when
  /// attached, observes each line before its L1 probe — the same ordering
  /// as the generic walk (prefetch fills can evict lines). Behavior is
  /// identical to calling access() — access() IS this.
  void access_range(std::uint64_t addr, std::uint64_t size, bool is_write) {
    if (size == 0) return;
    bytes_ += size;
    const std::uint64_t line_mask = static_cast<std::uint64_t>(line_size_ - 1);
    if constexpr (FastPathCache<CacheT>) {
      // fast_path_ok_: tier 0 is a standard cache (a victim front tier
      // would need its probe-invalidate-promote dance first).
      if (fast_path_ok_) {
        if ((addr & line_mask) + size <= line_size_) {
          // Single-line access: the dominant shape — kernels issue
          // element-sized touches, lines are 64 bytes.
          ++accesses_;
          const std::uint64_t line = addr & ~line_mask;
          if (prefetcher_ != nullptr) observe_and_prefetch(line);
          if (caches_[0].try_hit(line, is_write)) {
            ++tier_hits_[0];
            return;
          }
          miss_walk(line, is_write);
          return;
        }
        const std::uint64_t first = addr & ~line_mask;
        const std::uint64_t last = (addr + size - 1) & ~line_mask;
        for (std::uint64_t line = first; line <= last; line += line_size_) {
          ++accesses_;
          if (prefetcher_ != nullptr) observe_and_prefetch(line);
          if (caches_[0].try_hit(line, is_write))
            ++tier_hits_[0];
          else
            miss_walk(line, is_write);
        }
        return;
      }
    }
    const std::uint64_t first = addr & ~line_mask;
    const std::uint64_t last = (addr + size - 1) & ~line_mask;
    for (std::uint64_t line = first; line <= last; line += line_size_) {
      ++accesses_;
      access_line(line, is_write);
    }
  }

  /// Convenience wrappers matching the kernel Recorder interface.
  void load(std::uint64_t addr, std::uint32_t size) { access_range(addr, size, false); }
  void store(std::uint64_t addr, std::uint32_t size) { access_range(addr, size, true); }

  /// Non-temporal (streaming) store: bypasses the cache stack and writes
  /// straight to the backing device, invalidating any cached copy for
  /// coherence. This is what `movnt` does — it removes the read-for-
  /// ownership from STREAM's write stream (32 -> 24 bytes per element).
  void store_nt(std::uint64_t addr, std::uint32_t size);

  /// Enables the hardware stride prefetcher (disabled by default so the
  /// exact-count unit tests stay deterministic line-for-line). Prefetched
  /// lines are installed into every standard cache tier and accounted as
  /// device prefetch traffic, not demand traffic.
  void enable_prefetcher(std::size_t streams = 16, std::size_t depth = 4);
  /// Prefetcher statistics (zeros when disabled).
  std::uint64_t prefetch_fills() const { return prefetch_fills_; }

  /// Snapshot of traffic accounted so far.
  TrafficReport report() const;

  /// Clears all cache contents and counters.
  void reset();

  const Platform& platform() const { return platform_; }
  /// Raw per-tier cache counters (differential tests compare tier-by-tier).
  const CacheStats& tier_stats(std::size_t i) const { return caches_[i].stats(); }
  /// Line-granular demand accesses simulated so far.
  std::uint64_t lines_simulated() const { return accesses_; }

 private:
  void access_line(std::uint64_t line_addr, bool is_write);
  /// Walks tiers [start, n) for one line — access_line()'s loop, callable
  /// from tier 1 when the fast path has already settled tier 0.
  void walk_from(std::size_t start, std::uint64_t line_addr, bool is_write);
  /// Fast-path miss continuation: takes the tier-0 miss via
  /// miss_after_probe() (try_hit just proved the line absent — no second
  /// set scan) and walks the remaining tiers.
  void miss_walk(std::uint64_t line_addr, bool is_write)
    requires FastPathCache<CacheT>;
  /// Fast-path pre-walk prefetcher step: trains on the demand line and
  /// installs the suggested targets, in access_line()'s exact order —
  /// prefetch fills (and their evictions) land before the L1 probe.
  void observe_and_prefetch(std::uint64_t line_addr)
    requires FastPathCache<CacheT>;
  /// Handles a line evicted from tier `from`: fills the victim tier below
  /// (clean or dirty), pushes dirty lines into the next lower tier, and
  /// ultimately accounts device writebacks.
  void evict_from(std::size_t from, std::uint64_t line_addr, bool dirty);
  /// Counts a demand line served by the device backing `line_addr`.
  void serve_from_device(std::uint64_t line_addr);
  /// Counts a writeback line landing on the device backing `line_addr`.
  void writeback_to_device(std::uint64_t line_addr);
  /// Installs a prefetched line into the standard tiers if absent.
  void prefetch_line(std::uint64_t line_addr);
  /// Publishes accesses_ deltas to the "sim.lines_simulated" counter.
  /// Watermark scheme: the hot path only bumps the local accesses_; the
  /// process-wide atomic is touched at report()/reset()/destruction.
  void publish_lines() const;
  void refresh_fast_path() {
    fast_path_ok_ = !platform_.tiers.empty() &&
                    platform_.tiers[0].kind == TierKind::kStandard;
  }

  Platform platform_;
  std::unique_ptr<StridePrefetcher> prefetcher_;
  /// Reused target buffer for StridePrefetcher::observe_into (depth slots).
  std::unique_ptr<std::uint64_t[]> prefetch_targets_;
  std::uint64_t prefetch_fills_ = 0;
  std::vector<std::uint64_t> device_prefetch_lines_;
  /// One-entry write-combining buffer for non-temporal stores.
  std::uint64_t nt_wc_line_ = ~0ull;
  AddressMap address_map_;
  std::vector<CacheT> caches_;
  std::vector<std::uint64_t> tier_hits_;
  std::vector<std::uint64_t> tier_writebacks_;
  std::vector<std::uint64_t> device_lines_;
  std::vector<std::uint64_t> device_writeback_lines_;
  std::uint64_t accesses_ = 0;
  std::uint64_t bytes_ = 0;
  mutable std::uint64_t published_lines_ = 0;
  std::uint32_t line_size_ = 64;
  bool fast_path_ok_ = false;
};

// The two supported instantiations live in memory_system.cpp; the extern
// declarations keep every including TU from re-instantiating the walk
// (the inline access_range above still inlines at call sites).
extern template class MemorySystemT<FlatCache>;
extern template class MemorySystemT<SetAssociativeCache>;

/// The production simulator: flat SoA cache core, batched fast paths.
using MemorySystem = MemorySystemT<FlatCache>;
/// The retained reference model: map-based SetAssociativeCache, original
/// per-line walk. Differential tests and sanitizer CI run this one.
using ReferenceMemorySystem = MemorySystemT<SetAssociativeCache>;

}  // namespace opm::sim
