#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/address_map.hpp"
#include "sim/cache.hpp"
#include "sim/platform.hpp"
#include "sim/prefetcher.hpp"

/// Trace-driven simulation of a full platform memory hierarchy.
///
/// A MemorySystem is built from a Platform and consumes the raw memory
/// access stream of an instrumented kernel. It walks each access through
/// the tier stack — standard caches, the eDRAM victim L4, the MCDRAM
/// memory-side cache — and accounts bytes served by every tier and device.
/// This exact simulation validates the analytical TrafficModel used for
/// large sweeps (see tests/test_model_validation.cpp).
namespace opm::sim {

/// Byte accounting for one tier or device after a simulation run.
struct TierTraffic {
  std::string name;
  std::uint64_t hits = 0;        ///< line requests satisfied here
  std::uint64_t bytes_served = 0;  ///< hits * line_size
  std::uint64_t writebacks = 0;  ///< dirty lines pushed down from here
  std::uint64_t prefetches = 0;  ///< prefetch fills served by this device
};

/// Full traffic picture of a simulated execution.
struct TrafficReport {
  std::vector<TierTraffic> tiers;    ///< one per cache tier, L1 first
  std::vector<TierTraffic> devices;  ///< one per backing device
  std::uint64_t total_accesses = 0;  ///< line-granular demand accesses
  std::uint64_t total_bytes = 0;     ///< demand bytes requested by the core

  /// Bytes that had to come from any backing device (the "DRAM traffic").
  std::uint64_t device_bytes() const;
  /// Bytes served by the named tier, 0 when absent.
  std::uint64_t bytes_from(const std::string& name) const;
};

class MemorySystem {
 public:
  explicit MemorySystem(const Platform& platform);

  /// Simulates one demand access of `size` bytes starting at `addr`
  /// (split into line-granular requests). `is_write` marks stores.
  void access(std::uint64_t addr, std::uint32_t size, bool is_write);

  /// Convenience wrappers matching the kernel Recorder interface.
  void load(std::uint64_t addr, std::uint32_t size) { access(addr, size, false); }
  void store(std::uint64_t addr, std::uint32_t size) { access(addr, size, true); }

  /// Non-temporal (streaming) store: bypasses the cache stack and writes
  /// straight to the backing device, invalidating any cached copy for
  /// coherence. This is what `movnt` does — it removes the read-for-
  /// ownership from STREAM's write stream (32 -> 24 bytes per element).
  void store_nt(std::uint64_t addr, std::uint32_t size);

  /// Enables the hardware stride prefetcher (disabled by default so the
  /// exact-count unit tests stay deterministic line-for-line). Prefetched
  /// lines are installed into every standard cache tier and accounted as
  /// device prefetch traffic, not demand traffic.
  void enable_prefetcher(std::size_t streams = 16, std::size_t depth = 4);
  /// Prefetcher statistics (zeros when disabled).
  std::uint64_t prefetch_fills() const { return prefetch_fills_; }

  /// Snapshot of traffic accounted so far.
  TrafficReport report() const;

  /// Clears all cache contents and counters.
  void reset();

  const Platform& platform() const { return platform_; }

 private:
  void access_line(std::uint64_t line_addr, bool is_write);
  /// Handles a line evicted from tier `from`: fills the victim tier below
  /// (clean or dirty), pushes dirty lines into the next lower tier, and
  /// ultimately accounts device writebacks.
  void evict_from(std::size_t from, std::uint64_t line_addr, bool dirty);
  /// True when tier `i + 1` exists and is a victim cache.
  bool next_is_victim(std::size_t i) const;
  /// Counts a demand line served by the device backing `line_addr`.
  void serve_from_device(std::uint64_t line_addr);
  /// Counts a writeback line landing on the device backing `line_addr`.
  void writeback_to_device(std::uint64_t line_addr);
  /// Installs a prefetched line into the standard tiers if absent.
  void prefetch_line(std::uint64_t line_addr);

  Platform platform_;
  std::unique_ptr<StridePrefetcher> prefetcher_;
  std::uint64_t prefetch_fills_ = 0;
  std::vector<std::uint64_t> device_prefetch_lines_;
  /// One-entry write-combining buffer for non-temporal stores.
  std::uint64_t nt_wc_line_ = ~0ull;
  AddressMap address_map_;
  std::vector<std::unique_ptr<SetAssociativeCache>> caches_;
  std::vector<std::uint64_t> tier_hits_;
  std::vector<std::uint64_t> tier_writebacks_;
  std::vector<std::uint64_t> device_lines_;
  std::vector<std::uint64_t> device_writeback_lines_;
  std::uint64_t accesses_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint32_t line_size_ = 64;
};

}  // namespace opm::sim
