#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/cache.hpp"
#include "util/fingerprint.hpp"

/// Platform descriptions for the two evaluated machines (paper Table 3) and
/// their OPM tuning options (paper Table 1).
///
/// The paper's machines are discontinued hardware; these structs are the
/// simulation substitute. Every observation in the paper is a function of
/// the parameters captured here: tier capacities, bandwidths, latencies,
/// peak flop rates, and the OPM mode semantics.
namespace opm::sim {

/// eDRAM tuning options on Broadwell (BIOS switch).
enum class EdramMode { kOff, kOn };

/// MCDRAM tuning options on Knights Landing.
enum class McdramMode {
  kOff,     ///< "w/o MCDRAM": allocate everything on DDR
  kCache,   ///< 16 GB direct-mapped memory-side cache
  kFlat,    ///< 16 GB addressable memory, numactl-preferred, spill to DDR
  kHybrid,  ///< 8 GB cache + 8 GB flat
};

/// KNL mesh clustering modes (BIOS option; the paper evaluates in
/// quadrant, "the default mode [that] normally achieves the optimal
/// performance without explicit NUMA complexity", section 3.3).
enum class ClusterMode {
  kQuadrant,  ///< tag directories co-located with memory quadrants
  kAllToAll,  ///< no affinity: longest average mesh trips
  kSnc4,      ///< sub-NUMA: shortest local trips, software must place data
};

const char* to_string(EdramMode mode);
const char* to_string(McdramMode mode);
const char* to_string(ClusterMode mode);

/// How a cache tier behaves in the hierarchy walk.
enum class TierKind {
  kStandard,  ///< ordinary inclusive-ish CPU cache (L1/L2/L3)
  kVictim,    ///< non-inclusive victim cache filled by upper-level evictions
              ///< (eDRAM L4 on Broadwell, paper section 2.1)
  kMemorySide ///< memory-side cache in front of DRAM (MCDRAM cache mode,
              ///< paper section 2.2; tags held in the OPM itself)
};

/// One cache tier of a platform: geometry plus timing characteristics.
struct CacheTierSpec {
  CacheGeometry geometry;
  TierKind kind = TierKind::kStandard;
  double bandwidth = 0.0;     ///< bytes/s deliverable from this tier
  double latency = 0.0;       ///< seconds per line on a hit in this tier
  double tag_overhead = 0.0;  ///< fractional bandwidth lost to tag checks
                              ///< (MCDRAM cache mode keeps tags in MCDRAM)
};

/// One backing-memory device (OPM flat partition or DDR).
struct MemoryDeviceSpec {
  std::string name;
  std::uint64_t capacity = 0;
  double bandwidth = 0.0;  ///< bytes/s
  double latency = 0.0;    ///< seconds for a single line, unloaded
  bool on_package = false;
};

/// A fully-configured machine: what the paper calls a "platform + tuning
/// option" combination (e.g. "KNL with MCDRAM in hybrid mode").
struct Platform {
  std::string name;        ///< e.g. "Broadwell i7-5775c"
  std::string mode_label;  ///< e.g. "eDRAM on", "MCDRAM flat"
  int cores = 1;
  int threads = 1;              ///< optimal thread count used by the paper (Table 2 row-dependent; this is the machine max)
  double frequency = 0.0;       ///< Hz
  double sp_peak_flops = 0.0;   ///< single-precision machine peak, flop/s
  double dp_peak_flops = 0.0;   ///< double-precision machine peak, flop/s

  /// Cache tiers ordered from closest-to-core (L1) to last-level. Victim
  /// and memory-side tiers appear at the position they occupy physically.
  std::vector<CacheTierSpec> tiers;

  /// Backing devices. When `flat_opm_bytes > 0`, the first device is the
  /// OPM flat partition and addresses [0, flat_opm_bytes) route to it
  /// (numactl --preferred emulation); everything else routes to DDR.
  std::vector<MemoryDeviceSpec> devices;
  std::uint64_t flat_opm_bytes = 0;

  /// Multiplicative slowdown on *both* devices when an array straddles the
  /// OPM/DDR boundary in flat mode. Models the NoC bus conflicts and L2 set
  /// conflicts the paper reports when data is split between MCDRAM and DDR
  /// (paper section 4.2.1, observation II).
  double split_penalty = 1.0;

  /// Average memory power draw characteristics for the power model.
  double package_idle_watts = 0.0;
  double package_max_watts = 0.0;
  double dram_watts_per_gbps = 0.0;  ///< DDR power per GB/s drawn
  double opm_watts_static = 0.0;     ///< OPM static power when enabled
  double opm_watts_per_gbps = 0.0;   ///< OPM dynamic power per GB/s drawn

  /// Total capacity of all standard cache tiers up to and including index i.
  std::uint64_t cache_capacity_through(std::size_t i) const;
  /// Index of the last cache tier, or nullopt when there are none.
  std::optional<std::size_t> last_tier() const;
  /// DDR device (always the last device).
  const MemoryDeviceSpec& ddr() const { return devices.back(); }
};

/// Builds the Broadwell i7-5775c platform (paper Table 3 row 1) with the
/// given eDRAM mode (paper Table 1).
Platform broadwell(EdramMode mode);

/// Builds the Knights Landing 7210 platform (paper Table 3 row 2) with the
/// given MCDRAM mode (paper Table 1) and mesh cluster mode. The paper's
/// evaluation uses quadrant mode (section 3.3); the other modes shift the
/// L2-miss trip latency across the 2D mesh and are provided for the
/// cluster-mode ablation (`bench/ablation_cluster_modes`).
Platform knl(McdramMode mode, ClusterMode cluster = ClusterMode::kQuadrant);

/// Streams every model-relevant field of `p` (names, geometry, timing,
/// power calibration) into `h`. The platform fingerprint is part of every
/// sweep's result-cache key, so recalibrating any platform constant
/// re-keys — and thereby invalidates — all of that platform's cached
/// results.
void hash_platform(util::Hasher128& h, const Platform& p);

/// Digest of hash_platform over a fresh hasher.
util::Digest128 fingerprint(const Platform& p);

}  // namespace opm::sim
