#pragma once

#include <iosfwd>
#include <string>

#include "sim/platform.hpp"

/// Plain-text serialization of Platform descriptions.
///
/// Architects exploring design points (the paper's audience C) can dump a
/// built-in platform, edit capacities/bandwidths/latencies in a text
/// editor, and load the variant back into any harness — no recompilation.
/// Format: one `key = value` pair per line; tiers and devices repeat
/// their line once per entry; '#' starts a comment.
namespace opm::sim {

/// Serializes a platform (round-trips exactly through parse_platform).
std::string to_config(const Platform& platform);

/// Parses a platform from config text. Throws std::runtime_error with a
/// line number on malformed input.
Platform parse_platform(std::istream& in);
Platform parse_platform_string(const std::string& text);

/// Reads a platform config from a file.
Platform load_platform_file(const std::string& path);

}  // namespace opm::sim
