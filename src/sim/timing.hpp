#pragma once

#include <string>
#include <vector>

#include "sim/platform.hpp"

/// Analytical execution-time prediction.
///
/// This is the quantitative core of the reproduction: given how many flops
/// a kernel performs and how many bytes each hierarchy tier must deliver,
/// it predicts execution time on a simulated platform under an overlap
/// model — compute and every transfer channel proceed concurrently and the
/// slowest one bounds the run. Channels can be *bandwidth-bound* (traffic /
/// peak bandwidth) or *latency-bound* (limited by outstanding-miss
/// concurrency, i.e. memory-level parallelism) — the distinction the paper
/// uses to explain why SpTRSV loses on MCDRAM while SpMV wins (section
/// 4.2.2).
namespace opm::sim {

/// One transfer channel: a cache tier or a backing device under load.
struct ChannelLoad {
  std::string name;
  double bytes = 0.0;         ///< bytes this channel must deliver
  double bandwidth = 0.0;     ///< peak bytes/s of the channel
  double latency = 0.0;       ///< seconds per line when unloaded
  double tag_overhead = 0.0;  ///< fraction of bandwidth lost to tag checks
  double penalty = 1.0;       ///< multiplicative slowdown (flat-mode split)
};

/// A kernel execution expressed as work for the timing model.
struct Workload {
  double flops = 0.0;
  /// Fraction of machine peak the compute stages can reach given the
  /// kernel's tuning (tiling quality, vectorization, dependency stalls).
  double compute_efficiency = 1.0;
  /// Average outstanding line requests across the whole machine. Low MLP
  /// makes channels latency-bound; high MLP saturates bandwidth.
  double mlp_lines = 64.0;
  /// Cache-line size used to convert MLP into deliverable bytes/s.
  double line_size = 64.0;
  /// Non-overlappable serial time (e.g. level-set barrier costs in
  /// SpTRSV); added on top of the overlapped compute/transfer maximum.
  double fixed_time = 0.0;
  std::vector<ChannelLoad> channels;
};

/// Result of a prediction, with per-channel attribution for analysis.
struct TimingBreakdown {
  double compute_time = 0.0;
  std::vector<double> channel_times;   ///< aligned with Workload::channels
  std::vector<double> channel_eff_bw;  ///< effective bandwidth used
  double total_time = 0.0;
  std::string bound_by;  ///< "compute" or the limiting channel's name
};

/// Effective deliverable bandwidth of one channel under the given MLP:
/// min(peak * (1 - tag_overhead), mlp_lines * line_size / latency) / penalty.
double effective_bandwidth(const ChannelLoad& channel, double mlp_lines, double line_size);

/// Predicts the execution time of `work` on `platform`.
/// `double_precision` selects the flop peak (the paper evaluates DP only).
TimingBreakdown predict_time(const Platform& platform, const Workload& work,
                             bool double_precision = true);

/// Convenience: GFlop/s implied by a breakdown.
double gflops(const Workload& work, const TimingBreakdown& timing);

}  // namespace opm::sim
