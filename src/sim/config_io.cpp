#include "sim/config_io.hpp"

#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

namespace opm::sim {

namespace {

const char* kind_name(TierKind kind) {
  switch (kind) {
    case TierKind::kStandard: return "standard";
    case TierKind::kVictim: return "victim";
    case TierKind::kMemorySide: return "memory-side";
  }
  return "?";
}

TierKind kind_from(const std::string& s, int line_no) {
  if (s == "standard") return TierKind::kStandard;
  if (s == "victim") return TierKind::kVictim;
  if (s == "memory-side") return TierKind::kMemorySide;
  throw std::runtime_error("platform config line " + std::to_string(line_no) +
                           ": unknown tier kind '" + s + "'");
}

/// Parses "k1:v1 k2:v2 ..." into a map.
std::map<std::string, std::string> parse_fields(const std::string& body, int line_no) {
  std::map<std::string, std::string> out;
  std::istringstream in(body);
  std::string token;
  while (in >> token) {
    const auto colon = token.find(':');
    if (colon == std::string::npos)
      throw std::runtime_error("platform config line " + std::to_string(line_no) +
                               ": expected key:value, got '" + token + "'");
    out[token.substr(0, colon)] = token.substr(colon + 1);
  }
  return out;
}

double field_double(const std::map<std::string, std::string>& f, const std::string& key,
                    int line_no) {
  const auto it = f.find(key);
  if (it == f.end())
    throw std::runtime_error("platform config line " + std::to_string(line_no) +
                             ": missing field '" + key + "'");
  return std::stod(it->second);
}

std::uint64_t field_u64(const std::map<std::string, std::string>& f, const std::string& key,
                        int line_no) {
  const auto it = f.find(key);
  if (it == f.end())
    throw std::runtime_error("platform config line " + std::to_string(line_no) +
                             ": missing field '" + key + "'");
  return std::stoull(it->second);
}

}  // namespace

std::string to_config(const Platform& p) {
  std::ostringstream os;
  os.precision(17);
  os << "# opm platform config\n";
  os << "name = " << p.name << "\n";
  os << "mode_label = " << p.mode_label << "\n";
  os << "cores = " << p.cores << "\n";
  os << "threads = " << p.threads << "\n";
  os << "frequency = " << p.frequency << "\n";
  os << "sp_peak_flops = " << p.sp_peak_flops << "\n";
  os << "dp_peak_flops = " << p.dp_peak_flops << "\n";
  for (const auto& t : p.tiers) {
    os << "tier = name:" << t.geometry.name << " kind:" << kind_name(t.kind)
       << " capacity:" << t.geometry.capacity << " line:" << t.geometry.line_size
       << " ways:" << t.geometry.associativity << " bandwidth:" << t.bandwidth
       << " latency:" << t.latency << " tag_overhead:" << t.tag_overhead << "\n";
  }
  for (const auto& d : p.devices) {
    os << "device = name:" << d.name << " capacity:" << d.capacity
       << " bandwidth:" << d.bandwidth << " latency:" << d.latency
       << " on_package:" << (d.on_package ? 1 : 0) << "\n";
  }
  os << "flat_opm_bytes = " << p.flat_opm_bytes << "\n";
  os << "split_penalty = " << p.split_penalty << "\n";
  os << "package_idle_watts = " << p.package_idle_watts << "\n";
  os << "package_max_watts = " << p.package_max_watts << "\n";
  os << "dram_watts_per_gbps = " << p.dram_watts_per_gbps << "\n";
  os << "opm_watts_static = " << p.opm_watts_static << "\n";
  os << "opm_watts_per_gbps = " << p.opm_watts_per_gbps << "\n";
  return os.str();
}

Platform parse_platform(std::istream& in) {
  Platform p;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    const auto eq = line.find('=');
    if (eq == std::string::npos) continue;  // blank / comment-only line

    std::string key = line.substr(0, eq);
    std::string value = line.substr(eq + 1);
    auto trim = [](std::string& s) {
      const auto b = s.find_first_not_of(" \t");
      const auto e = s.find_last_not_of(" \t");
      s = b == std::string::npos ? "" : s.substr(b, e - b + 1);
    };
    trim(key);
    trim(value);

    if (key == "name") p.name = value;
    else if (key == "mode_label") p.mode_label = value;
    else if (key == "cores") p.cores = std::stoi(value);
    else if (key == "threads") p.threads = std::stoi(value);
    else if (key == "frequency") p.frequency = std::stod(value);
    else if (key == "sp_peak_flops") p.sp_peak_flops = std::stod(value);
    else if (key == "dp_peak_flops") p.dp_peak_flops = std::stod(value);
    else if (key == "flat_opm_bytes") p.flat_opm_bytes = std::stoull(value);
    else if (key == "split_penalty") p.split_penalty = std::stod(value);
    else if (key == "package_idle_watts") p.package_idle_watts = std::stod(value);
    else if (key == "package_max_watts") p.package_max_watts = std::stod(value);
    else if (key == "dram_watts_per_gbps") p.dram_watts_per_gbps = std::stod(value);
    else if (key == "opm_watts_static") p.opm_watts_static = std::stod(value);
    else if (key == "opm_watts_per_gbps") p.opm_watts_per_gbps = std::stod(value);
    else if (key == "tier") {
      const auto f = parse_fields(value, line_no);
      CacheTierSpec tier;
      tier.geometry.name = f.count("name") ? f.at("name") : "tier";
      tier.kind = kind_from(f.count("kind") ? f.at("kind") : "standard", line_no);
      tier.geometry.capacity = field_u64(f, "capacity", line_no);
      tier.geometry.line_size = static_cast<std::uint32_t>(field_u64(f, "line", line_no));
      tier.geometry.associativity = static_cast<std::uint32_t>(field_u64(f, "ways", line_no));
      tier.bandwidth = field_double(f, "bandwidth", line_no);
      tier.latency = field_double(f, "latency", line_no);
      if (f.count("tag_overhead")) tier.tag_overhead = std::stod(f.at("tag_overhead"));
      p.tiers.push_back(tier);
    } else if (key == "device") {
      const auto f = parse_fields(value, line_no);
      MemoryDeviceSpec dev;
      dev.name = f.count("name") ? f.at("name") : "device";
      dev.capacity = field_u64(f, "capacity", line_no);
      dev.bandwidth = field_double(f, "bandwidth", line_no);
      dev.latency = field_double(f, "latency", line_no);
      dev.on_package = f.count("on_package") && f.at("on_package") == "1";
      p.devices.push_back(dev);
    } else {
      throw std::runtime_error("platform config line " + std::to_string(line_no) +
                               ": unknown key '" + key + "'");
    }
  }
  if (p.devices.empty())
    throw std::runtime_error("platform config: at least one device is required");
  return p;
}

Platform parse_platform_string(const std::string& text) {
  std::istringstream in(text);
  return parse_platform(in);
}

Platform load_platform_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("platform config: cannot open " + path);
  return parse_platform(in);
}

}  // namespace opm::sim
