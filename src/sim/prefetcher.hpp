#pragma once

#include <cstdint>
#include <vector>

/// Hardware stride-prefetcher model for the trace-driven simulator.
///
/// Both evaluated machines prefetch aggressively on sequential streams —
/// it is why Stream and the stencil sweep at full DRAM bandwidth despite
/// per-access latencies. The model mirrors a per-stream next-N-lines
/// prefetcher: it tracks up to `streams` independent access streams; when
/// an address continues a stream's stride (+/- one line), the next
/// `depth` lines are issued as prefetches.
///
/// The MemorySystem consumes the prefetch suggestions by pre-installing
/// lines (counted separately from demand traffic), which converts demand
/// misses on streaming kernels into prefetch hits — and leaves irregular
/// gather streams (SpMV's x vector) untouched, exactly the asymmetry the
/// paper's kernels exhibit.
namespace opm::sim {

class StridePrefetcher {
 public:
  /// `streams`: tracked concurrent streams; `depth`: lines prefetched
  /// ahead on a stream hit; `line_size`: bytes per line.
  StridePrefetcher(std::size_t streams = 16, std::size_t depth = 4,
                   std::uint32_t line_size = 64);

  /// Observes a demand line access; writes the line addresses to prefetch
  /// into `out` (caller-provided, at least depth() slots) and returns how
  /// many were written. This is the hot-path entry: no allocation.
  std::size_t observe_into(std::uint64_t line_addr, std::uint64_t* out);

  /// Allocating convenience wrapper around observe_into() (tests and the
  /// reference simulation path; the flat hot path never calls it).
  std::vector<std::uint64_t> observe(std::uint64_t line_addr);

  /// Upper bound on the targets one observe can issue.
  std::size_t depth() const { return depth_; }
  /// Number of prefetches issued so far.
  std::uint64_t issued() const { return issued_; }
  /// Number of stream detections (an access continuing a known stream).
  std::uint64_t stream_hits() const { return stream_hits_; }

  void reset();

 private:
  struct Stream {
    std::uint64_t last_line = 0;
    std::int64_t stride = 0;  ///< in lines; 0 = not yet established
    std::uint64_t last_use = 0;
    bool valid = false;
  };

  std::size_t streams_;
  std::size_t depth_;
  std::uint32_t line_size_;
  /// Power-of-two line sizes (every real platform) turn the per-observe
  /// address/line conversions into shifts instead of 64-bit divisions.
  bool line_pow2_ = false;
  std::uint32_t line_shift_ = 0;
  std::uint64_t clock_ = 0;
  std::uint64_t issued_ = 0;
  std::uint64_t stream_hits_ = 0;
  std::vector<Stream> table_;
};

}  // namespace opm::sim
