#include "sim/cache.hpp"

#include <bit>
#include <stdexcept>

namespace opm::sim {

const char* to_string(ReplacementPolicy policy) {
  switch (policy) {
    case ReplacementPolicy::kLru: return "LRU";
    case ReplacementPolicy::kFifo: return "FIFO";
    case ReplacementPolicy::kRandom: return "random";
  }
  return "?";
}

SetAssociativeCache::SetAssociativeCache(CacheGeometry geometry) : geometry_(geometry) {
  if (geometry_.line_size == 0 || !std::has_single_bit(geometry_.line_size))
    throw std::invalid_argument("cache line size must be a power of two");
  if (geometry_.associativity == 0) throw std::invalid_argument("associativity must be >= 1");
  if (geometry_.capacity % (static_cast<std::uint64_t>(geometry_.line_size) *
                            geometry_.associativity) != 0)
    throw std::invalid_argument("capacity must be a multiple of line_size * associativity");
  line_mask_ = geometry_.line_size - 1;
  num_sets_ = geometry_.sets();
  if (num_sets_ == 0) throw std::invalid_argument("cache must have at least one set");
}

CacheResult SetAssociativeCache::access(std::uint64_t line_addr, bool is_write) {
  ++clock_;
  auto& set = sets_[set_index(line_addr)];
  const std::uint64_t tag = tag_of(line_addr);

  for (auto& way : set.ways) {
    if (way.valid && way.tag == tag) {
      way.last_use = clock_;
      way.dirty = way.dirty || is_write;
      ++stats_.hits;
      return {.hit = true};
    }
  }

  ++stats_.misses;
  if (is_write && !geometry_.write_allocate) return {};  // write-around: no fill

  CacheResult result;
  Way* slot = nullptr;
  if (set.ways.size() < geometry_.associativity) {
    set.ways.push_back({});
    slot = &set.ways.back();
  } else {
    slot = choose_victim(set);
    result.evicted = true;
    result.evicted_dirty = slot->dirty;
    result.evicted_addr = (slot->tag * num_sets_ + set_index(line_addr)) * geometry_.line_size;
    ++stats_.evictions;
    if (slot->dirty) ++stats_.dirty_evictions;
  }
  slot->tag = tag;
  slot->valid = true;
  slot->dirty = is_write;
  slot->last_use = clock_;
  slot->inserted = clock_;
  return result;
}

SetAssociativeCache::Way* SetAssociativeCache::choose_victim(Set& set) {
  switch (geometry_.policy) {
    case ReplacementPolicy::kLru: {
      Way* victim = &set.ways.front();
      for (auto& way : set.ways)
        if (way.last_use < victim->last_use) victim = &way;
      return victim;
    }
    case ReplacementPolicy::kFifo: {
      Way* victim = &set.ways.front();
      for (auto& way : set.ways)
        if (way.inserted < victim->inserted) victim = &way;
      return victim;
    }
    case ReplacementPolicy::kRandom: {
      // xorshift64*: deterministic across runs, independent of layout.
      rng_state_ ^= rng_state_ >> 12;
      rng_state_ ^= rng_state_ << 25;
      rng_state_ ^= rng_state_ >> 27;
      const std::uint64_t r = rng_state_ * 0x2545f4914f6cdd1dull;
      return &set.ways[r % set.ways.size()];
    }
  }
  return &set.ways.front();
}

bool SetAssociativeCache::contains(std::uint64_t line_addr) const {
  const auto it = sets_.find(set_index(line_addr));
  if (it == sets_.end()) return false;
  const std::uint64_t tag = tag_of(line_addr);
  for (const auto& way : it->second.ways)
    if (way.valid && way.tag == tag) return true;
  return false;
}

CacheResult SetAssociativeCache::install(std::uint64_t line_addr, bool dirty) {
  ++clock_;
  auto& set = sets_[set_index(line_addr)];
  const std::uint64_t tag = tag_of(line_addr);

  for (auto& way : set.ways) {
    if (way.valid && way.tag == tag) {
      way.last_use = clock_;
      way.dirty = way.dirty || dirty;
      return {.hit = true};
    }
  }

  CacheResult result;
  Way* slot = nullptr;
  if (set.ways.size() < geometry_.associativity) {
    set.ways.push_back({});
    slot = &set.ways.back();
  } else {
    slot = choose_victim(set);
    result.evicted = true;
    result.evicted_dirty = slot->dirty;
    result.evicted_addr = (slot->tag * num_sets_ + set_index(line_addr)) * geometry_.line_size;
    ++stats_.evictions;
    if (slot->dirty) ++stats_.dirty_evictions;
  }
  slot->tag = tag;
  slot->valid = true;
  slot->dirty = dirty;
  slot->last_use = clock_;
  slot->inserted = clock_;
  return result;
}

bool SetAssociativeCache::invalidate(std::uint64_t line_addr, bool& was_dirty) {
  const auto it = sets_.find(set_index(line_addr));
  if (it == sets_.end()) return false;
  const std::uint64_t tag = tag_of(line_addr);
  for (auto& way : it->second.ways) {
    if (way.valid && way.tag == tag) {
      was_dirty = way.dirty;
      way.valid = false;
      way.dirty = false;
      return true;
    }
  }
  return false;
}

void SetAssociativeCache::reset() {
  sets_.clear();
  stats_ = {};
  clock_ = 0;
}

std::size_t SetAssociativeCache::resident_lines() const {
  std::size_t n = 0;
  for (const auto& [idx, set] : sets_)
    for (const auto& way : set.ways)
      if (way.valid) ++n;
  return n;
}

}  // namespace opm::sim
