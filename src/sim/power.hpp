#pragma once

#include "sim/platform.hpp"

/// Power and energy estimation — the RAPL/PAPI substitute.
///
/// The paper (section 5.2) measures average package and DRAM power with
/// RAPL and derives the energy break-even condition (Eq. 1). On simulated
/// hardware we compute the same quantities from a calibrated linear model:
/// package power scales with compute utilization, DDR power with DDR
/// bandwidth drawn, and OPM adds a static component plus a dynamic
/// bandwidth-proportional one.
namespace opm::sim {

/// Average power during a run, watts.
struct PowerEstimate {
  double package = 0.0;  ///< cores + uncore + OPM (RAPL "package" domain)
  double dram = 0.0;     ///< DDR DIMM power (RAPL "DRAM" domain)
  double opm = 0.0;      ///< portion of `package` attributable to the OPM

  double total() const { return package + dram; }
};

/// Estimates average power for a run on `platform`.
///
/// `compute_utilization` is achieved flops over machine peak (0..1);
/// `ddr_gbps` and `opm_gbps` are average bandwidths drawn from DDR and the
/// OPM during the run, in decimal GB/s.
PowerEstimate estimate_power(const Platform& platform, double compute_utilization,
                             double ddr_gbps, double opm_gbps);

/// Energy in joules for a run of `seconds` at the estimated power.
double energy_joules(const PowerEstimate& power, double seconds);

/// The paper's Eq. 1: with an OPM bringing a fractional performance gain P
/// (e.g. 0.20 for +20 %) at a fractional power increase W, using the OPM
/// saves energy iff (1 + W) / (1 + P) < 1, i.e. P > W.
bool opm_saves_energy(double perf_gain_fraction, double power_increase_fraction);

/// Energy ratio E_with / E_without from Eq. 1 (values < 1 mean savings).
double opm_energy_ratio(double perf_gain_fraction, double power_increase_fraction);

/// Energy-delay product E·t in joule-seconds — the alternative objective
/// the paper points at ("other metrics such as Energy-Delay products can
/// also be used to adjust users' final optimization objective", §5.2).
double energy_delay_product(const PowerEstimate& power, double seconds);

/// EDP ratio EDP_with / EDP_without under Eq. 1's notation:
/// (1 + W) / (1 + P)² — performance counts twice, so OPM breaks even at a
/// smaller gain than for pure energy.
double opm_edp_ratio(double perf_gain_fraction, double power_increase_fraction);

}  // namespace opm::sim
