#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "sim/memory_system.hpp"
#include "sim/platform.hpp"
#include "util/fingerprint.hpp"

/// Sampled trace-driven simulation — the "fast" tier of the fast-or-exact
/// contract (docs/MODEL.md §16).
///
/// The exact simulator walks every line-granular access through the full
/// cache hierarchy; for big sweeps that walk IS the cost. The obvious
/// accelerator — simulate a systematic subset of trace *windows* and
/// extrapolate — founders on state: a cache remembers millions of lines,
/// so every skipped window leaves the far tiers (L3, eDRAM, MCDRAM)
/// stale, and re-warming them costs as much as not skipping at all (the
/// SMARTS functional-warming bind: in a functional simulator the "cheap
/// warming" path and the full path are the same code). Measured on this
/// repo's hot-path trace, time-window sampling put L3 hits 4x off and
/// extrapolated L3 writebacks to zero.
///
/// WindowSampler therefore samples **space, not time**: it simulates a
/// deterministic 1/S slice of the line-address universe, chosen as whole
/// cache-set populations so the sampled sets feel their exact, full
/// pressure across the entire trace — no skipped state, no warm-up bias.
///
///   * Filter. A line is sampled iff its index mod 64 falls in a set of
///     64/S residues forming an arithmetic progression with an odd,
///     seed-derived step. The AP covers every residue class mod 2^k
///     uniformly (2^k <= 64/S), so power-of-two strided walks — the
///     dominant HPC access pattern — are sampled exactly proportionally
///     instead of aliasing against the filter.
///   * Compression. Sampled lines are renumbered densely (block index x
///     ranks-per-half + rank) and replayed against a platform whose tier
///     capacities are scaled to match. Because every tier indexes sets
///     by low line bits, sampled original sets map 1:1 onto the shrunken
///     system's sets with identical line populations: per-set LRU/MRU
///     behavior is bit-exact to the full simulation restricted to the
///     slice. Compression also keeps sequential streams sequential, so
///     the stream prefetcher locks on as it would at full scale.
///   * Error bound via half-slices. The slice runs as TWO independent
///     half-slices (the low and high halves of the residue progression,
///     each itself an odd-step AP), each against its own 1/(2S)-scaled
///     hierarchy. The combined counters extrapolate by observed_lines /
///     sampled_lines; the per-counter bound is the half-sample estimate
///     |Ya - Yb| / (Ya + Yb) — a direct measurement of the spatial
///     sampling error, maxed over every counter carrying at least 1% of
///     line traffic. (A window-variance bound was tried first and
///     rejected: it measures phase heterogeneity, ~50% on a trace whose
///     true extrapolation error is 0.1%.)
///   * Exactness floor. The head of the trace is buffered; a stream that
///     ends before `min_exact_lines` is replayed through an exact
///     full-platform system instead (sampled = false) — short probes pay
///     nothing and lose nothing.
///
/// Determinism: the schedule is a pure function of (seed, line address).
/// Same digest + seed => byte-identical SampledTraffic, at any sweep
/// worker count.
namespace opm::sim {

/// Process-wide sampling switch (core::SweepConfig plumbs --sample /
/// OPM_SAMPLE here; the advise probe and benches consult it).
enum class SamplingMode {
  kOff,   ///< exact simulation everywhere
  kFast,  ///< sampled simulation with error bounds
};

const char* to_string(SamplingMode mode);
bool parse_sampling_mode(std::string_view text, SamplingMode* out);
void set_sampling_mode(SamplingMode mode);
SamplingMode sampling_mode();

/// Knobs of one sampled run. Defaults are the tuned trade: 1/8 of the
/// set groups simulated (~8x less simulation work) with sub-percent
/// extrapolation error on the hot-path trace mix.
struct SampleConfig {
  std::uint64_t window_lines = 8192;      ///< observed-line window (progress unit)
  std::uint32_t slice = 8;                ///< simulate 1 of every `slice` set groups
                                          ///< (clamped to a power of two in [1, 32];
                                          ///< 1 = exact simulation)
  std::uint64_t min_exact_lines = 16384;  ///< shorter traces are simulated exactly
  std::uint64_t seed = 0;                 ///< selects the sampled residues

  bool operator==(const SampleConfig&) const = default;
};

/// Canonical config for a request: the seed folds the 128-bit request
/// digest, so sampled results stay content-addressed — the same request
/// always samples the same sets, and different requests decorrelate.
SampleConfig sample_config_for(const util::Digest128& digest);

/// What a sampled run produced.
struct SampledTraffic {
  TrafficReport traffic;       ///< extrapolated (or exact, when !sampled)
  bool sampled = false;        ///< false: trace was short, report is exact
  double max_rel_error = 0.0;  ///< error bound, max over significant counters
  std::uint64_t windows_measured = 0;
  std::uint64_t lines_observed = 0;   ///< full trace, line granular
  std::uint64_t lines_simulated = 0;  ///< lines actually fed to the hierarchy
};

/// Records a trace like trace::SystemRecorder, simulating only the
/// sampled slice. Satisfies the trace::Recorder concept plus the
/// MemorySystem recording surface (access_range, store_nt,
/// enable_prefetcher), so kernels and benches drive it unchanged.
class WindowSampler {
 public:
  WindowSampler(const Platform& platform, const SampleConfig& config);
  WindowSampler(const WindowSampler&) = delete;
  WindowSampler& operator=(const WindowSampler&) = delete;

  void load(std::uint64_t addr, std::uint64_t size) { on_access(addr, size, false, false); }
  void store(std::uint64_t addr, std::uint64_t size) { on_access(addr, size, true, false); }
  void access(std::uint64_t addr, std::uint64_t size, bool is_write) {
    on_access(addr, size, is_write, false);
  }
  void access_range(std::uint64_t addr, std::uint64_t size, bool is_write) {
    on_access(addr, size, is_write, false);
  }
  void store_nt(std::uint64_t addr, std::uint64_t size) { on_access(addr, size, true, true); }

  void enable_prefetcher(std::uint32_t streams = 16, std::uint32_t depth = 4);

  /// Finalizes (idempotent) and returns the extrapolated report.
  const SampledTraffic& sampled_report();

  /// Full observed line count — the work the sample stands in for, so
  /// lines/sec rates over a sampled run stay comparable to exact runs.
  std::uint64_t lines_simulated() const { return pos_; }
  std::uint64_t lines_observed() const { return pos_; }

 private:
  /// Residue modulus of the sampling filter (line-index units, unrelated
  /// to the byte line size). 64 keeps the rank table in one cache line
  /// and yields whole-set populations for every tier with >= 64 sets.
  static constexpr std::uint64_t kResidueSpan = 64;

  void on_access(std::uint64_t addr, std::uint64_t size, bool is_write, bool nt) {
    const std::uint64_t line = addr >> line_shift_;
    const std::uint64_t nlines =
        ((addr & line_mask_) + size + line_mask_) >> line_shift_;
    pos_ += nlines;
    bytes_ += size;
    if (buffering_) {
      buffer_.push_back(Op{addr, size, is_write, nt});
      if (pos_ >= config_.min_exact_lines) flush_buffer();
      return;
    }
    if (exact_) {
      if (nt) {
        half_a_.store_nt(addr, size);
      } else {
        half_a_.access_range(addr, size, is_write);
      }
      return;
    }
    if (nlines == 1) {
      // The dominant path is "not sampled": test a register-resident
      // bitmask first so dropped lines never touch the rank table.
      if ((sample_mask_ >> (line & (kResidueSpan - 1))) & 1)
        forward_line(line, rank_[line & (kResidueSpan - 1)], addr & line_mask_, size,
                     is_write, nt);
    } else {
      forward_span(addr, size, is_write, nt);
    }
  }

  /// Replays one sampled line into its half-slice system at the
  /// compressed address, preserving the intra-line byte range.
  void forward_line(std::uint64_t line, std::int8_t rank, std::uint64_t offset,
                    std::uint64_t size, bool is_write, bool nt);
  /// Splits a multi-line access and forwards its sampled lines.
  void forward_span(std::uint64_t addr, std::uint64_t size, bool is_write, bool nt);
  void flush_buffer();

  struct Op {
    std::uint64_t addr;
    std::uint64_t size;
    bool is_write;
    bool nt;
  };

  Platform platform_;  ///< full platform (exact replay of short traces)
  SampleConfig config_;
  bool exact_;            ///< slice == 1: half_a_ is the full-platform system
  MemorySystem half_a_;   ///< ranks [0, ranks_/2) — or the exact system
  MemorySystem half_b_;   ///< ranks [ranks_/2, ranks_) — idle when exact_
  std::uint64_t line_mask_ = 63;
  std::uint32_t line_shift_ = 6;
  std::uint32_t ranks_ = 8;       ///< sampled residues (kResidueSpan / slice)
  std::uint32_t half_ranks_ = 4;  ///< residues per half-slice
  std::uint64_t sample_mask_ = 0;        ///< bit r set iff residue r is sampled
  std::int8_t rank_[kResidueSpan] = {};  ///< residue -> rank, -1 = dropped
  bool prefetcher_ = false;
  std::uint32_t pf_streams_ = 16;
  std::uint32_t pf_depth_ = 4;

  std::uint64_t pos_ = 0;    ///< observed lines
  std::uint64_t bytes_ = 0;  ///< observed bytes
  std::uint64_t half_lines_[2] = {0, 0};  ///< sampled lines per half-slice
  bool buffering_ = true;
  std::vector<Op> buffer_;

  std::uint64_t windows_ = 0;  ///< observed window_lines chunks (progress metric,
                               ///< derived from pos_ when the report finalizes)

  bool finalized_ = false;
  SampledTraffic result_;
};

}  // namespace opm::sim
