#include "sim/flat_cache.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace opm::sim {
namespace {

// Small caches are preallocated whole in the constructor so the hot path
// never branches to the allocator; above this footprint only touched
// set-pages materialize (the 16 GB MCDRAM tier would otherwise cost ~2 GB
// of metadata up front for sets a workload never maps to).
constexpr std::uint64_t kPreallocLimitBytes = 4ull << 20;

}  // namespace

FlatCache::FlatCache(CacheGeometry geometry) : geometry_(geometry) {
  if (geometry_.line_size == 0 || !std::has_single_bit(geometry_.line_size))
    throw std::invalid_argument("cache line size must be a power of two");
  if (geometry_.associativity == 0) throw std::invalid_argument("associativity must be >= 1");
  if (geometry_.capacity % (static_cast<std::uint64_t>(geometry_.line_size) *
                            geometry_.associativity) != 0)
    throw std::invalid_argument("capacity must be a multiple of line_size * associativity");
  line_mask_ = geometry_.line_size - 1;
  line_shift_ = static_cast<std::uint32_t>(std::countr_zero(geometry_.line_size));
  num_sets_ = geometry_.sets();
  if (num_sets_ == 0) throw std::invalid_argument("cache must have at least one set");
  // The packed way word keeps the tag in bits [3, 64); a tag can only
  // reach bit 61 when line_size * sets < 8 bytes, which no real geometry
  // comes near (use the reference SetAssociativeCache if you need one).
  if (static_cast<std::uint64_t>(geometry_.line_size) * num_sets_ < 8)
    throw std::invalid_argument("flat cache requires line_size * sets >= 8");
  sets_pow2_ = std::has_single_bit(num_sets_);
  if (sets_pow2_) {
    sets_shift_ = static_cast<std::uint32_t>(std::countr_zero(num_sets_));
    sets_mask_ = num_sets_ - 1;
  }
  assoc_ = geometry_.associativity;
  const bool stamped_policy = geometry_.policy == ReplacementPolicy::kLru ||
                              geometry_.policy == ReplacementPolicy::kFifo;
  use_stamp_ = stamped_policy && assoc_ > 1;
  stamp_on_hit_ = use_stamp_ && geometry_.policy == ReplacementPolicy::kLru;
  use_mru_ = assoc_ >= 2 && assoc_ <= 256;  // hint byte holds ways 0..255

  const std::uint64_t num_pages = ((num_sets_ - 1) >> kPageShift) + 1;
  pages_.resize(num_pages);

  std::uint64_t footprint = num_sets_ * assoc_ * sizeof(std::uint64_t);
  if (use_stamp_) footprint *= 2;
  if (use_mru_) footprint += num_sets_;
  if (footprint <= kPreallocLimitBytes)
    for (std::uint64_t p = 0; p < num_pages; ++p) allocate_page(p);
}

std::uint64_t FlatCache::sets_in_page(std::uint64_t page) const {
  return std::min<std::uint64_t>(kPageMask + 1, num_sets_ - (page << kPageShift));
}

void FlatCache::allocate_page(std::uint64_t page) {
  const std::uint64_t words = sets_in_page(page) * assoc_;
  Page& pg = pages_[page];
  pg.meta = std::make_unique<std::uint64_t[]>(words);  // value-init: all unallocated
  if (use_stamp_) pg.stamp = std::make_unique<std::uint64_t[]>(words);
  if (use_mru_) pg.mru = std::make_unique<std::uint8_t[]>(sets_in_page(page));
}

void FlatCache::reset() {
  for (std::uint64_t p = 0; p < pages_.size(); ++p) {
    Page& page = pages_[p];
    if (page.meta == nullptr) continue;
    const std::uint64_t words = sets_in_page(p) * assoc_;
    std::fill_n(page.meta.get(), words, 0);
    if (page.stamp != nullptr) std::fill_n(page.stamp.get(), words, 0);
    if (page.mru != nullptr) std::fill_n(page.mru.get(), sets_in_page(p), std::uint8_t{0});
  }
  stats_ = {};
  clock_ = 0;
  // rng_state_ is deliberately NOT reset, matching the reference model.
}

std::size_t FlatCache::resident_lines() const {
  std::size_t n = 0;
  for (std::uint64_t p = 0; p < pages_.size(); ++p) {
    const Page& page = pages_[p];
    if (page.meta == nullptr) continue;
    const std::uint64_t words = sets_in_page(p) * assoc_;
    for (std::uint64_t i = 0; i < words; ++i)
      if ((page.meta[i] & kValid) != 0) ++n;
  }
  return n;
}

}  // namespace opm::sim
