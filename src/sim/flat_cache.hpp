#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/cache.hpp"
#include "sim/simd_probe.hpp"

/// Flat, preallocated, structure-of-arrays cache core — the simulation
/// hot path.
///
/// Functionally identical to SetAssociativeCache (the retained reference
/// model in sim/cache.hpp) but engineered for lines/sec: every figure,
/// sweep, cache fill, and opm_serve response bottoms out in millions of
/// calls to access(), and the reference pays an unordered_map hash probe
/// plus a lazily grown vector<Way> on each of them. Here the per-set way
/// state lives in contiguous arrays indexed arithmetically:
///
///   - {tag, allocated, dirty, valid} packed into ONE 64-bit word per way,
///     so a lookup is a load + compare (the dirty bit is masked off);
///   - a per-set MRU way hint probed before the way scan — repeated
///     touches to the same line (the dominant pattern: kernels issue 8-byte
///     accesses, lines are 64 bytes) hit in a handful of instructions;
///   - replacement stamps (LRU recency / FIFO insertion order) in a
///     parallel array, allocated only for policies and associativities
///     that need them;
///   - a two-level sparse set-page table: sets are grouped into pages of
///     4096 and pages materialize on first touch, so the 16 GB MCDRAM
///     direct-mapped tier (256 M sets) only costs memory for the pages a
///     workload actually maps to. Small caches preallocate every page in
///     the constructor and never branch to the allocator again.
///
/// Equivalence contract (enforced by tests/test_sim_differential.cpp):
/// for any op sequence, hits/misses/evictions/dirty_evictions, every
/// CacheResult, contains(), resident_lines(), and the random-policy victim
/// sequence are bit-identical to SetAssociativeCache. Internal LRU/FIFO
/// stamps may hold different absolute clock values than the reference, but
/// their *ordering* — the only thing victim selection reads — is the same.
///
/// The way scans themselves are vectorized: with one packed word per way
/// and a set's words contiguous, the tag compare across 8–16 ways is a
/// single SIMD compare (sim/simd_probe.hpp — AVX2/SSE2/scalar tiers; the
/// scalar path is the bit-identity oracle and simd::self_check() verifies
/// the selected backend against it at runtime in CI).
///
/// Layout constraint: the packed word keeps the tag in bits [3, 64), so
/// line_size * sets must be >= 8 bytes (true for any realistic geometry;
/// the constructor rejects the rest).
namespace opm::sim {

class FlatCache {
 public:
  explicit FlatCache(CacheGeometry geometry);

  // The lookup entries below (access/try_hit/contains/install/invalidate)
  // are defined inline at the bottom of this header: the tier walk in
  // memory_system.cpp is explicitly instantiated against FlatCache, and
  // the lines/sec of the whole simulator hinges on these scans inlining
  // into it. Only the miss/fill machinery lives out of line.

  /// Accesses one line. `line_addr` must be line-aligned (use align()).
  /// On a miss the line is installed; on a write the line is marked dirty.
  CacheResult access(std::uint64_t line_addr, bool is_write);

  /// Hot-path probe: behaves exactly like the hit half of access() —
  /// counts the hit, refreshes recency and the MRU hint, marks dirty on
  /// writes — but on a miss changes NOTHING (no miss count, no fill).
  /// Callers follow up a false return with access() to take the miss.
  bool try_hit(std::uint64_t line_addr, bool is_write);

  /// Looks a line up without installing or touching replacement state.
  bool contains(std::uint64_t line_addr) const;

  /// Installs a line without counting it as a demand access (victim-cache
  /// fills and prefetches). Returns eviction info exactly like access().
  CacheResult install(std::uint64_t line_addr, bool dirty);

  /// Removes a line if present; `was_dirty` reports its state.
  bool invalidate(std::uint64_t line_addr, bool& was_dirty);

  /// Demand miss taken AFTER a failed try_hit(): counts the miss and fills
  /// without re-scanning the set. Valid only while the line is known
  /// absent, i.e. nothing touched this cache since the probe; equivalent
  /// to access() under that precondition.
  CacheResult miss_after_probe(std::uint64_t line_addr, bool is_write) {
    ++clock_;
    return demand_miss(set_index(line_addr), tag_of(line_addr), is_write);
  }

  /// install() for a line known ABSENT (e.g. a contains() sweep across the
  /// hierarchy just said so): skips the hit scan and fills directly.
  /// Equivalent to install() under that precondition.
  CacheResult install_absent(std::uint64_t line_addr, bool dirty) {
    ++clock_;
    return install_fill(set_index(line_addr), tag_of(line_addr), dirty);
  }

  /// Rounds an address down to its line boundary.
  std::uint64_t align(std::uint64_t addr) const { return addr & ~line_mask_; }

  const CacheGeometry& geometry() const { return geometry_; }
  const CacheStats& stats() const { return stats_; }
  /// Clears contents and counters (keeps pages allocated: a reset cache
  /// re-zeroes its touched pages instead of round-tripping the allocator).
  void reset();
  /// Number of lines currently resident.
  std::size_t resident_lines() const;

 private:
  // Packed way word: tag << 3 | allocated << 2 | dirty << 1 | valid.
  // "allocated" mirrors the reference's lazily grown ways vector: a way
  // that has ever held a line stays allocated after invalidate(), and
  // allocated ways always form a prefix of the set.
  static constexpr std::uint64_t kValid = 1ull;
  static constexpr std::uint64_t kDirty = 2ull;
  static constexpr std::uint64_t kAllocated = 4ull;
  static constexpr std::uint32_t kTagShift = 3;
  static_assert(simd::kProbeDirtyBit == kDirty && simd::kProbeAllocatedBit == kAllocated,
                "simd_probe.hpp mirrors the packed way-word layout");

  static constexpr std::uint32_t kPageShift = 12;  ///< 4096 sets per page
  static constexpr std::uint64_t kPageMask = (1ull << kPageShift) - 1;

  struct Page {
    std::unique_ptr<std::uint64_t[]> meta;   ///< sets_in_page * assoc packed words
    std::unique_ptr<std::uint64_t[]> stamp;  ///< LRU recency / FIFO insertion order
    std::unique_ptr<std::uint8_t[]> mru;     ///< last way hit/filled per set
  };

  std::uint64_t set_index(std::uint64_t line_addr) const {
    const std::uint64_t line = line_addr >> line_shift_;
    return sets_pow2_ ? (line & sets_mask_) : (line % num_sets_);
  }
  std::uint64_t tag_of(std::uint64_t line_addr) const {
    const std::uint64_t line = line_addr >> line_shift_;
    return sets_pow2_ ? (line >> sets_shift_) : (line / num_sets_);
  }
  std::uint64_t sets_in_page(std::uint64_t page) const;
  Page& ensure_page(std::uint64_t page) {
    Page& pg = pages_[page];
    if (pg.meta == nullptr) allocate_page(page);
    return pg;
  }
  void allocate_page(std::uint64_t page);

  /// Miss path of access(): counts the miss, honors write-around, fills.
  /// The caller has already bumped clock_. Inline below — on streaming
  /// workloads misses are the common case, not the cold one.
  CacheResult demand_miss(std::uint64_t set, std::uint64_t tag, bool is_write);
  /// Miss path of install(): fills without stats.
  CacheResult install_fill(std::uint64_t set, std::uint64_t tag, bool dirty);
  /// Fills a line into its set (miss path of access/install): appends into
  /// the first unallocated way or displaces the policy's victim.
  CacheResult fill(Page& page, std::uint64_t local_set, std::uint64_t set,
                   std::uint64_t tag, bool dirty);
  /// Victim way index of a full set (all `assoc_` ways allocated). `stamp`
  /// points at the set's stamps, or nullptr when the policy ignores them.
  std::uint32_t choose_victim(const std::uint64_t* stamp);

  CacheGeometry geometry_;
  std::uint64_t line_mask_ = 0;
  std::uint32_t line_shift_ = 0;
  std::uint64_t num_sets_ = 0;
  bool sets_pow2_ = false;
  std::uint32_t sets_shift_ = 0;
  std::uint64_t sets_mask_ = 0;
  std::uint32_t assoc_ = 1;
  bool stamp_on_hit_ = false;  ///< LRU refreshes recency on hits
  bool use_stamp_ = false;     ///< LRU/FIFO with > 1 way track stamps
  bool use_mru_ = false;       ///< MRU hint pays off only with > 1 way
  std::uint64_t clock_ = 0;
  std::uint64_t rng_state_ = 0x243f6a8885a308d3ull;  ///< random-policy state
  std::vector<Page> pages_;
  CacheStats stats_;
};

// try_hit is THE hot instruction sequence of the simulator — every L1
// probe of every demand line lands here first — so it is defined inline
// for cross-module inlining into MemorySystem's batched walk.
inline bool FlatCache::try_hit(std::uint64_t line_addr, bool is_write) {
  const std::uint64_t set = set_index(line_addr);
  Page& page = pages_[set >> kPageShift];
  if (page.meta == nullptr) return false;  // untouched page: cold miss
  const std::uint64_t local_set = set & kPageMask;
  std::uint64_t* meta = page.meta.get() + local_set * assoc_;
  const std::uint64_t want = (tag_of(line_addr) << kTagShift) | kAllocated | kValid;

  std::uint32_t way = 0;
  if (use_mru_) {
    way = page.mru[local_set];
    if ((meta[way] & ~kDirty) != want) {
      way = simd::find_way(meta, assoc_, want);  // whole-set SIMD compare
      if (way == assoc_) return false;
      page.mru[local_set] = static_cast<std::uint8_t>(way);
    }
  } else if ((meta[0] & ~kDirty) != want) {
    if (assoc_ == 1) return false;
    way = simd::find_way(meta, assoc_, want);
    if (way == assoc_) return false;
  }

  ++clock_;
  if (is_write) meta[way] |= kDirty;
  if (stamp_on_hit_) page.stamp[local_set * assoc_ + way] = clock_;
  ++stats_.hits;
  return true;
}

// access/install/contains/invalidate keep their hit-path scans inline for
// the same reason as try_hit: the tier walk calls them once per tier per
// missing line, and a cross-module call per probe costs more than the
// probe. Their miss paths (fill, victim choice, page allocation) are cold
// by comparison and stay in flat_cache.cpp.
inline CacheResult FlatCache::access(std::uint64_t line_addr, bool is_write) {
  ++clock_;
  const std::uint64_t set = set_index(line_addr);
  const std::uint64_t tag = tag_of(line_addr);
  Page& page = pages_[set >> kPageShift];
  if (page.meta != nullptr) {
    const std::uint64_t local_set = set & kPageMask;
    std::uint64_t* meta = page.meta.get() + local_set * assoc_;
    const std::uint64_t want = (tag << kTagShift) | kAllocated | kValid;
    const std::uint32_t way = simd::find_way(meta, assoc_, want);
    if (way != assoc_) {
      if (is_write) meta[way] |= kDirty;
      if (stamp_on_hit_) page.stamp[local_set * assoc_ + way] = clock_;
      if (use_mru_) page.mru[local_set] = static_cast<std::uint8_t>(way);
      ++stats_.hits;
      return {.hit = true};
    }
  }
  return demand_miss(set, tag, is_write);
}

inline CacheResult FlatCache::install(std::uint64_t line_addr, bool dirty) {
  ++clock_;
  const std::uint64_t set = set_index(line_addr);
  const std::uint64_t tag = tag_of(line_addr);
  Page& page = pages_[set >> kPageShift];
  if (page.meta != nullptr) {
    const std::uint64_t local_set = set & kPageMask;
    std::uint64_t* meta = page.meta.get() + local_set * assoc_;
    const std::uint64_t want = (tag << kTagShift) | kAllocated | kValid;
    const std::uint32_t way = simd::find_way(meta, assoc_, want);
    if (way != assoc_) {
      if (dirty) meta[way] |= kDirty;
      if (stamp_on_hit_) page.stamp[local_set * assoc_ + way] = clock_;
      if (use_mru_) page.mru[local_set] = static_cast<std::uint8_t>(way);
      return {.hit = true};
    }
  }
  return install_fill(set, tag, dirty);
}

inline bool FlatCache::contains(std::uint64_t line_addr) const {
  const std::uint64_t set = set_index(line_addr);
  const Page& page = pages_[set >> kPageShift];
  if (page.meta == nullptr) return false;
  const std::uint64_t* meta = page.meta.get() + (set & kPageMask) * assoc_;
  const std::uint64_t want = (tag_of(line_addr) << kTagShift) | kAllocated | kValid;
  // The prefetcher re-probes its recent targets every demand line; the
  // MRU hint (the way last filled/hit in this set) answers those in one
  // load without disturbing replacement state.
  if (use_mru_ && (meta[page.mru[set & kPageMask]] & ~kDirty) == want) return true;
  return simd::find_way(meta, assoc_, want) != assoc_;
}

inline bool FlatCache::invalidate(std::uint64_t line_addr, bool& was_dirty) {
  const std::uint64_t set = set_index(line_addr);
  Page& page = pages_[set >> kPageShift];
  if (page.meta == nullptr) return false;
  std::uint64_t* meta = page.meta.get() + (set & kPageMask) * assoc_;
  const std::uint64_t want = (tag_of(line_addr) << kTagShift) | kAllocated | kValid;
  const std::uint32_t way = simd::find_way(meta, assoc_, want);
  if (way == assoc_) return false;
  const std::uint64_t m = meta[way];
  was_dirty = (m & kDirty) != 0;
  // The way stays allocated with its stale tag — exactly the reference's
  // invalidate, which keeps the Way slot in the vector; a later full-set
  // eviction can still pick (and count) it.
  meta[way] = m & ~(kValid | kDirty);
  return true;
}

inline CacheResult FlatCache::demand_miss(std::uint64_t set, std::uint64_t tag,
                                          bool is_write) {
  ++stats_.misses;
  if (is_write && !geometry_.write_allocate) return {};  // write-around: no fill
  Page& page = ensure_page(set >> kPageShift);
  return fill(page, set & kPageMask, set, tag, is_write);
}

inline CacheResult FlatCache::install_fill(std::uint64_t set, std::uint64_t tag,
                                           bool dirty) {
  Page& page = ensure_page(set >> kPageShift);
  return fill(page, set & kPageMask, set, tag, dirty);
}

inline CacheResult FlatCache::fill(Page& page, std::uint64_t local_set,
                                   std::uint64_t set, std::uint64_t tag, bool dirty) {
  std::uint64_t* meta = page.meta.get() + local_set * assoc_;
  std::uint64_t* stamp = use_stamp_ ? page.stamp.get() + local_set * assoc_ : nullptr;

  // Allocated ways form a prefix of the set, so one load of the LAST way
  // distinguishes the steady state (set full, go straight to the victim
  // scan) from the fill-up phase (scan for the first free way).
  std::uint32_t way = assoc_;
  if ((meta[assoc_ - 1] & kAllocated) == 0) {
    for (std::uint32_t w = 0; w < assoc_; ++w) {
      if ((meta[w] & kAllocated) == 0) {
        way = w;
        break;
      }
    }
  }

  CacheResult result;
  if (way == assoc_) {  // set full: displace the policy's victim
    way = choose_victim(stamp);
    const std::uint64_t m = meta[way];
    result.evicted = true;
    result.evicted_dirty = (m & kDirty) != 0;
    const std::uint64_t victim_tag = m >> kTagShift;
    result.evicted_addr = sets_pow2_
        ? ((victim_tag << sets_shift_) | set) << line_shift_
        : (victim_tag * num_sets_ + set) * geometry_.line_size;
    ++stats_.evictions;
    if (result.evicted_dirty) ++stats_.dirty_evictions;
  }
  meta[way] = (tag << kTagShift) | kAllocated | kValid | (dirty ? kDirty : 0);
  if (stamp != nullptr) stamp[way] = clock_;
  if (use_mru_) page.mru[local_set] = static_cast<std::uint8_t>(way);
  return result;
}

inline std::uint32_t FlatCache::choose_victim(const std::uint64_t* stamp) {
  switch (geometry_.policy) {
    case ReplacementPolicy::kLru:
    case ReplacementPolicy::kFifo: {
      // LRU stamps are refreshed on hits, FIFO stamps only at fill, so one
      // first-minimum scan serves both (first minimum = the reference's
      // strict-< scan over ways in insertion order).
      if (stamp == nullptr) return 0;  // assoc == 1: the only way
      std::uint32_t victim = 0;
      for (std::uint32_t w = 1; w < assoc_; ++w)
        if (stamp[w] < stamp[victim]) victim = w;
      return victim;
    }
    case ReplacementPolicy::kRandom: {
      // xorshift64*: identical state evolution to the reference model —
      // advanced exactly once per full-set victim choice.
      rng_state_ ^= rng_state_ >> 12;
      rng_state_ ^= rng_state_ << 25;
      rng_state_ ^= rng_state_ >> 27;
      const std::uint64_t r = rng_state_ * 0x2545f4914f6cdd1dull;
      return static_cast<std::uint32_t>(r % assoc_);
    }
  }
  return 0;
}

}  // namespace opm::sim
