#include "sim/timing.hpp"

#include <algorithm>

#include "util/units.hpp"

namespace opm::sim {

double effective_bandwidth(const ChannelLoad& channel, double mlp_lines, double line_size) {
  const double peak = channel.bandwidth * (1.0 - channel.tag_overhead);
  double bw = peak;
  if (channel.latency > 0.0 && mlp_lines > 0.0) {
    // Little's law: concurrency-limited throughput.
    const double concurrency_bw = mlp_lines * line_size / channel.latency;
    bw = std::min(bw, concurrency_bw);
  }
  const double penalty = std::max(channel.penalty, 1.0);
  return bw / penalty;
}

TimingBreakdown predict_time(const Platform& platform, const Workload& work,
                             bool double_precision) {
  TimingBreakdown out;
  const double peak = double_precision ? platform.dp_peak_flops : platform.sp_peak_flops;
  const double eff = std::clamp(work.compute_efficiency, 1e-6, 1.0);
  out.compute_time = peak > 0.0 ? work.flops / (peak * eff) : 0.0;

  out.total_time = out.compute_time;
  out.bound_by = "compute";
  out.channel_times.reserve(work.channels.size());
  out.channel_eff_bw.reserve(work.channels.size());
  for (const auto& ch : work.channels) {
    const double bw = effective_bandwidth(ch, work.mlp_lines, work.line_size);
    const double t = (bw > 0.0 && ch.bytes > 0.0) ? ch.bytes / bw : 0.0;
    out.channel_times.push_back(t);
    out.channel_eff_bw.push_back(bw);
    if (t > out.total_time) {
      out.total_time = t;
      out.bound_by = ch.name;
    }
  }
  out.total_time += std::max(work.fixed_time, 0.0);
  return out;
}

double gflops(const Workload& work, const TimingBreakdown& timing) {
  return timing.total_time > 0.0 ? util::to_gflops(work.flops / timing.total_time) : 0.0;
}

}  // namespace opm::sim
