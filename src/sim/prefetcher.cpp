#include "sim/prefetcher.hpp"

#include <bit>
#include <cstdlib>

namespace opm::sim {

StridePrefetcher::StridePrefetcher(std::size_t streams, std::size_t depth,
                                   std::uint32_t line_size)
    : streams_(streams), depth_(depth), line_size_(line_size), table_(streams) {
  line_pow2_ = line_size_ != 0 && std::has_single_bit(line_size_);
  if (line_pow2_) line_shift_ = static_cast<std::uint32_t>(std::countr_zero(line_size_));
}

std::size_t StridePrefetcher::observe_into(std::uint64_t line_addr, std::uint64_t* out) {
  ++clock_;
  const std::int64_t line = static_cast<std::int64_t>(
      line_pow2_ ? line_addr >> line_shift_ : line_addr / line_size_);

  // Look for a stream this access continues: either it matches the
  // established stride, or it is within +/- 2 lines of a tracked head
  // (stride training).
  Stream* free_slot = nullptr;
  Stream* oldest = nullptr;
  for (auto& s : table_) {
    if (!s.valid) {
      free_slot = &s;
      continue;
    }
    const std::int64_t last = static_cast<std::int64_t>(s.last_line);
    const std::int64_t delta = line - last;
    if (s.stride != 0 && delta == s.stride) {
      // Established stream continues: prefetch depth lines ahead.
      s.last_line = static_cast<std::uint64_t>(line);
      s.last_use = clock_;
      ++stream_hits_;
      std::size_t n = 0;
      for (std::size_t d = 1; d <= depth_; ++d) {
        const std::int64_t target = line + s.stride * static_cast<std::int64_t>(d);
        if (target < 0) break;
        out[n++] = line_pow2_ ? static_cast<std::uint64_t>(target) << line_shift_
                              : static_cast<std::uint64_t>(target) * line_size_;
      }
      issued_ += n;
      return n;
    }
    if (s.stride == 0 && delta != 0 && std::llabs(delta) <= 2) {
      // Second access of a nascent stream: lock the stride in.
      s.stride = delta;
      s.last_line = static_cast<std::uint64_t>(line);
      s.last_use = clock_;
      return 0;
    }
    if (oldest == nullptr || s.last_use < oldest->last_use) oldest = &s;
  }

  // No stream matched: allocate, preferring a free slot over replacing
  // the least recently useful stream.
  Stream* slot = free_slot != nullptr ? free_slot : oldest;
  slot->valid = true;
  slot->last_line = static_cast<std::uint64_t>(line);
  slot->stride = 0;
  slot->last_use = clock_;
  return 0;
}

std::vector<std::uint64_t> StridePrefetcher::observe(std::uint64_t line_addr) {
  std::vector<std::uint64_t> out(depth_);
  out.resize(observe_into(line_addr, out.data()));
  return out;
}

void StridePrefetcher::reset() {
  for (auto& s : table_) s = {};
  clock_ = issued_ = stream_hits_ = 0;
}

}  // namespace opm::sim
