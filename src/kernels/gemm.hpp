#pragma once

#include <cstddef>

#include "dense/blas.hpp"
#include "dense/matrix.hpp"
#include "kernels/model.hpp"
#include "trace/recorder.hpp"

/// GEMM — tiled dense matrix-matrix multiply (PLASMA substitute).
///
/// C = A·B + C with square matrices, blocked into nb x nb tiles exactly as
/// the paper's PLASMA dgemm: the two tuning axes of Figures 7 and 15 are
/// the matrix order n and the tile size nb.
namespace opm::kernels {

/// Real tiled GEMM: C += A·B. `tile` is the block edge (clamped to n).
void gemm_tiled(const dense::Matrix& a, const dense::Matrix& b, dense::Matrix& c,
                std::size_t tile);

/// Tiled GEMM with BLIS-style panel packing: the active A and B tiles are
/// copied into dense contiguous buffers before the micro-kernel runs, so
/// the inner loops stream unit-stride regardless of the matrices' leading
/// dimension. Numerically identical to gemm_tiled (same accumulation
/// order); the copy pays off on real hardware by removing strided tile
/// accesses — the optimization every high-performance BLAS (including
/// PLASMA's backend) performs.
void gemm_tiled_packed(const dense::Matrix& a, const dense::Matrix& b, dense::Matrix& c,
                       std::size_t tile);

/// Instrumented tiled GEMM: performs the same computation while reporting
/// every element touch to `rec` using a virtual address space that places
/// A at 0, B after A, and C after B (so flat-mode placement is modelled).
template <trace::Recorder R>
void gemm_instrumented(const dense::Matrix& a, const dense::Matrix& b, dense::Matrix& c,
                       std::size_t tile, R& rec) {
  const std::size_t n = a.rows();
  const std::size_t nb = tile == 0 ? n : std::min(tile, n);
  const std::uint64_t a_base = 0;
  const std::uint64_t b_base = a.bytes();
  const std::uint64_t c_base = b_base + b.bytes();

  for (std::size_t i0 = 0; i0 < n; i0 += nb) {
    const std::size_t im = std::min(nb, n - i0);
    for (std::size_t j0 = 0; j0 < n; j0 += nb) {
      const std::size_t jm = std::min(nb, n - j0);
      for (std::size_t k0 = 0; k0 < n; k0 += nb) {
        const std::size_t km = std::min(nb, n - k0);
        // One tile multiply with per-element instrumentation. The access
        // pattern mirrors gemm_block's i-k-j loop order.
        for (std::size_t i = 0; i < im; ++i) {
          for (std::size_t k = 0; k < km; ++k) {
            rec.load(a_base + ((i0 + i) * n + (k0 + k)) * 8, 8);
            const double aik = a(i0 + i, k0 + k);
            for (std::size_t j = 0; j < jm; ++j) {
              rec.load(b_base + ((k0 + k) * n + (j0 + j)) * 8, 8);
              rec.load(c_base + ((i0 + i) * n + (j0 + j)) * 8, 8);
              c(i0 + i, j0 + j) += aik * b(k0 + k, j0 + j);
              rec.store(c_base + ((i0 + i) * n + (j0 + j)) * 8, 8);
            }
          }
        }
      }
    }
  }
}

/// Analytical model of one tiled GEMM execution on `platform` at matrix
/// order `n` with tile edge `nb`.
LocalityModel gemm_model(const sim::Platform& platform, double n, double nb);

}  // namespace opm::kernels
