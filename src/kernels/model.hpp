#pragma once

#include <functional>

#include "sim/platform.hpp"
#include "sim/timing.hpp"

/// The analytical traffic-model framework — the executable Stepping Model.
///
/// Every kernel describes one execution as a LocalityModel: how many flops
/// it performs, how many bytes its cores request, and — the key piece — a
/// *miss curve* `miss_bytes(C)`: the bytes that must be fetched from below
/// a cache of capacity C. The miss curve is exactly what reuse-distance
/// analysis measures on real traces (opm::trace::ReuseDistanceAnalyzer),
/// which is how these models are cross-validated.
///
/// `build_workload` folds a LocalityModel against a Platform's tier stack:
/// each tier's channel load is the miss traffic of all capacity above it;
/// flat-mode OPM partitions split the bottom traffic by footprint; and the
/// direct-mapped MCDRAM cache pays a conflict-factor capacity derating and
/// a tag-check bandwidth overhead. Combined with the MLP ramp, the
/// timing-model output reproduces the paper's cache peaks and valleys
/// (Figure 6) quantitatively.
namespace opm::kernels {

/// Smooth miss fraction of a working set `ws` against capacity `capacity`:
/// ≈0 when ws ≪ capacity, 0.5 at ws = capacity, ≈1 when ws ≫ capacity.
/// `sharpness` controls the transition width in the log domain.
double capacity_miss_fraction(double ws, double capacity, double sharpness = 6.0);

/// Analytic description of one kernel execution on one problem size.
struct LocalityModel {
  double flops = 0.0;
  /// Bytes the cores request (L1 channel load).
  double total_bytes = 0.0;
  /// Distinct bytes touched (decides flat-mode placement and MLP ramp).
  double footprint = 0.0;
  /// Miss curve: capacity (bytes) -> bytes requested from below it.
  /// Must be non-increasing in capacity.
  std::function<double(double)> miss_bytes;
  /// Fraction of machine peak flops the compute stages can achieve.
  double compute_efficiency = 1.0;
  /// Outstanding cache-line requests machine-wide at full memory pressure.
  /// Latency-bound kernels (SpTRSV) have intrinsically low values. The
  /// fraction of this actually available to a channel ramps with the
  /// footprint relative to the on-chip cache capacity — the paper's
  /// cache-valley mechanism ("MLP at this point is insufficient to
  /// saturate the bandwidth of the lower memory hierarchy").
  double mlp_max = 64.0;
  /// Effective-capacity derating for direct-mapped memory-side caches
  /// (conflict misses; MCDRAM cache mode).
  double direct_mapped_factor = 0.6;
  /// Non-overlappable serial time per execution (synchronization costs);
  /// forwarded to sim::Workload::fixed_time.
  double fixed_seconds = 0.0;
};

/// Predicted performance of a model on a platform.
struct Prediction {
  sim::Workload workload;
  sim::TimingBreakdown timing;
  double gflops = 0.0;
  double seconds = 0.0;
  /// Average bandwidth drawn from DDR and from OPM during the run (GB/s),
  /// inputs to the power model.
  double ddr_gbps = 0.0;
  double opm_gbps = 0.0;
  /// Achieved compute utilization (flops over machine DP peak).
  double utilization = 0.0;
};

/// Folds the locality model against the platform's hierarchy.
sim::Workload build_workload(const sim::Platform& platform, const LocalityModel& model);

/// Full pipeline: workload -> timing -> throughput + power-model inputs.
Prediction predict(const sim::Platform& platform, const LocalityModel& model);

}  // namespace opm::kernels
