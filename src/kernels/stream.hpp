#pragma once

#include <cstdint>
#include <span>

#include "kernels/model.hpp"
#include "sim/memory_system.hpp"
#include "trace/recorder.hpp"

/// Stream — the TRIAD kernel a = b + α·c (paper section 3.1.3).
///
/// Pure bandwidth probe: 2 flops and 32 bytes (two reads, one
/// write-allocate + write) per element, arithmetic intensity 1/16.
namespace opm::kernels {

/// One TRIAD pass: a[i] = b[i] + alpha * c[i].
void stream_triad(std::span<double> a, std::span<const double> b, std::span<const double> c,
                  double alpha);

/// Instrumented TRIAD. Virtual layout: a at 0, then b, then c.
template <trace::Recorder R>
void stream_triad_instrumented(std::span<double> a, std::span<const double> b,
                               std::span<const double> c, double alpha, R& rec) {
  const std::uint64_t a_base = 0;
  const std::uint64_t b_base = a.size() * 8;
  const std::uint64_t c_base = b_base + b.size() * 8;
  for (std::size_t i = 0; i < a.size(); ++i) {
    rec.load(b_base + i * 8, 8);
    rec.load(c_base + i * 8, 8);
    a[i] = b[i] + alpha * c[i];
    rec.store(a_base + i * 8, 8);
  }
}

/// Instrumented TRIAD with non-temporal stores, driven straight against a
/// MemorySystem (NT stores are a memory-system operation, not a plain
/// recorder event). Removes the read-for-ownership on the output array.
void stream_triad_nt(std::span<double> a, std::span<const double> b,
                     std::span<const double> c, double alpha, sim::MemorySystem& system);

/// Analytical model of repeated TRIAD passes over arrays of `n` doubles.
/// `nt_stores` drops the output array's read-for-ownership (24 instead of
/// 32 bytes per element), lifting the memory-bound plateau by 4/3 — the
/// classic icc streaming-store effect on STREAM.
LocalityModel stream_model(const sim::Platform& platform, double n, bool nt_stores = false);

}  // namespace opm::kernels
