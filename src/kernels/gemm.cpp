#include "kernels/gemm.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace opm::kernels {

void gemm_tiled(const dense::Matrix& a, const dense::Matrix& b, dense::Matrix& c,
                std::size_t tile) {
  const std::size_t n = a.rows();
  if (a.cols() != n || b.rows() != n || b.cols() != n || c.rows() != n || c.cols() != n)
    throw std::invalid_argument("gemm_tiled: matrices must be square and same order");
  const std::size_t nb = tile == 0 ? n : std::min(tile, n);

  for (std::size_t i0 = 0; i0 < n; i0 += nb) {
    const std::size_t im = std::min(nb, n - i0);
    for (std::size_t j0 = 0; j0 < n; j0 += nb) {
      const std::size_t jm = std::min(nb, n - j0);
      for (std::size_t k0 = 0; k0 < n; k0 += nb) {
        const std::size_t km = std::min(nb, n - k0);
        dense::gemm_block(&a.data()[i0 * n + k0], n, &b.data()[k0 * n + j0], n,
                          &c.data()[i0 * n + j0], n, im, jm, km);
      }
    }
  }
}

void gemm_tiled_packed(const dense::Matrix& a, const dense::Matrix& b, dense::Matrix& c,
                       std::size_t tile) {
  const std::size_t n = a.rows();
  if (a.cols() != n || b.rows() != n || b.cols() != n || c.rows() != n || c.cols() != n)
    throw std::invalid_argument("gemm_tiled_packed: matrices must be square, same order");
  const std::size_t nb = tile == 0 ? n : std::min(tile, n);

  std::vector<double> a_pack(nb * nb);
  std::vector<double> b_pack(nb * nb);
  for (std::size_t i0 = 0; i0 < n; i0 += nb) {
    const std::size_t im = std::min(nb, n - i0);
    for (std::size_t j0 = 0; j0 < n; j0 += nb) {
      const std::size_t jm = std::min(nb, n - j0);
      for (std::size_t k0 = 0; k0 < n; k0 += nb) {
        const std::size_t km = std::min(nb, n - k0);
        // Pack the active tiles into contiguous row-major panels.
        for (std::size_t i = 0; i < im; ++i)
          for (std::size_t k = 0; k < km; ++k)
            a_pack[i * km + k] = a(i0 + i, k0 + k);
        for (std::size_t k = 0; k < km; ++k)
          for (std::size_t j = 0; j < jm; ++j)
            b_pack[k * jm + j] = b(k0 + k, j0 + j);
        dense::gemm_block(a_pack.data(), km, b_pack.data(), jm, &c.data()[i0 * n + j0], n,
                          im, jm, km);
      }
    }
  }
}

LocalityModel gemm_model(const sim::Platform& platform, double n, double nb_in) {
  LocalityModel m;
  const double nb = std::clamp(nb_in, 8.0, n);
  m.flops = 2.0 * n * n * n;
  // Register blocking covers a ~4x reuse on the L1 request stream.
  m.total_bytes = 8.0 * 2.0 * n * n * n / 4.0;
  m.footprint = 3.0 * 8.0 * n * n;

  const double cold_bytes = 32.0 * n * n;  // Table 2: 3 reads + 1 write
  const double footprint = m.footprint;
  m.miss_bytes = [n, nb, cold_bytes, footprint](double capacity) {
    // Blocked-GEMM traffic from below a cache of capacity C:
    // 24·n³/nb_eff bytes (A and B tile streams plus the C read/write),
    // where nb_eff is the tile edge the cache can actually hold (3
    // resident tiles). Oversized tiles thrash quadratically — the
    // triangular heat-map structure of Figures 7 and 15; the thrash shows
    // up as *traffic*, which is what lets the OPM rescue badly-tiled
    // configurations (Figure 1's less-optimized-code story).
    const double fit_edge = std::sqrt(std::max(capacity, 1.0) / 24.0);
    double nb_eff = nb;
    if (nb > fit_edge) nb_eff = fit_edge * (fit_edge / nb);
    const double traffic = 32.0 * n * n * n / std::max(nb_eff, 1.0);
    const double f = capacity_miss_fraction(footprint, capacity);
    return cold_bytes + std::max(0.0, traffic - cold_bytes) * f;
  };

  // Compute efficiency: peaks for large n; small tiles pay loop overhead,
  // small matrices cannot amortize the blocking (the paper's "sufficient
  // data size is required" observation). Cache-thrash costs live in the
  // traffic model above, not here.
  m.compute_efficiency = 0.93 * (nb / (nb + 64.0)) * (n / (n + 768.0));
  m.mlp_max = 8.0 * platform.cores;
  return m;
}

}  // namespace opm::kernels
