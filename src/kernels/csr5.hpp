#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <span>
#include <vector>

#include "sparse/formats.hpp"

/// CSR5-style storage format (Liu & Vinter, ICS'15 — the paper's SpMV).
///
/// The nonzeros are partitioned into fixed-size 2D tiles of ω lanes x σ
/// rows, stored tile-interleaved (lane-major) so SIMD lanes read
/// consecutive elements, with a per-tile descriptor: the row containing
/// the tile's first element and a bit flag marking which in-tile positions
/// start a new CSR row. SpMV then runs a segmented sum inside each tile —
/// load-balanced regardless of row-length skew, which is the format's
/// point. This implementation keeps the tile layout and segmented-sum
/// algorithm of CSR5 and simplifies the descriptor encoding (plain arrays
/// instead of packed words).
namespace opm::kernels {

class Csr5Matrix {
 public:
  /// Builds the tiled representation from CSR. `omega` is the SIMD lane
  /// count, `sigma` the tile depth; tile size is omega * sigma nonzeros.
  static Csr5Matrix build(const sparse::Csr& a, int omega = 4, int sigma = 16);

  sparse::index_t rows() const { return rows_; }
  sparse::index_t cols() const { return cols_; }
  std::size_t nnz() const { return vals_.size(); }
  int omega() const { return omega_; }
  int sigma() const { return sigma_; }
  std::size_t tiles() const { return tile_row_.size(); }

  /// y = A·x using per-tile segmented sums.
  void spmv(std::span<const double> x, std::span<double> y) const;

  /// Instrumented SpMV: identical computation, reporting every value,
  /// index, gather and update access to `rec`. Virtual layout: tile
  /// descriptors at 0, then col_idx, values, x, y — the tiled storage's
  /// sequential access signature (vs CSR's row-major one) shows up
  /// directly in the reuse profile.
  template <typename R>
  void spmv_instrumented(std::span<const double> x, std::span<double> y, R& rec) const {
    if (x.size() != static_cast<std::size_t>(cols_) ||
        y.size() != static_cast<std::size_t>(rows_))
      throw std::invalid_argument("csr5 spmv: size mismatch");
    std::fill(y.begin(), y.end(), 0.0);

    const std::uint64_t desc_base = 0;
    const std::uint64_t col_base =
        desc_base + tile_row_.size() * 4 + bit_flag_.size() * 8;
    const std::uint64_t val_base = col_base + col_idx_.size() * 4;
    const std::uint64_t x_base = val_base + vals_.size() * 8;
    const std::uint64_t y_base = x_base + x.size() * 8;

    const std::size_t tile = tile_size();
    const std::size_t words = flag_words_per_tile();
    const std::size_t full_tiles = tail_start_ / tile;
    for (std::size_t t = 0; t < full_tiles; ++t) {
      const std::size_t base = t * tile;
      rec.load(desc_base + t * 4, 4);  // tile_row descriptor
      std::size_t cur_row = static_cast<std::size_t>(tile_row_[t]);
      double acc = 0.0;
      for (std::size_t k = 0; k < tile; ++k) {
        if (k % 64 == 0) rec.load(desc_base + tile_row_.size() * 4 + (t * words + k / 64) * 8, 8);
        const bool flag = (bit_flag_[t * words + k / 64] >> (k % 64)) & 1ull;
        const std::size_t g = base + k;
        if (flag) {
          y[cur_row] += acc;
          rec.store(y_base + cur_row * 8, 8);
          acc = 0.0;
          while (static_cast<std::size_t>(row_ptr_[cur_row + 1]) <= g) ++cur_row;
        }
        const std::size_t lane = k / static_cast<std::size_t>(sigma_);
        const std::size_t depth = k % static_cast<std::size_t>(sigma_);
        const std::size_t s = base + depth * static_cast<std::size_t>(omega_) + lane;
        rec.load(col_base + s * 4, 4);
        rec.load(val_base + s * 8, 8);
        const auto col = static_cast<std::size_t>(col_idx_[s]);
        rec.load(x_base + col * 8, 8);
        acc += vals_[s] * x[col];
      }
      y[cur_row] += acc;
      rec.store(y_base + cur_row * 8, 8);
    }
    if (tail_start_ < nnz()) {
      std::size_t row = 0;
      while (static_cast<std::size_t>(row_ptr_[row + 1]) <= tail_start_) ++row;
      double acc = 0.0;
      std::size_t cur = row;
      for (std::size_t g = tail_start_; g < nnz(); ++g) {
        while (static_cast<std::size_t>(row_ptr_[cur + 1]) <= g) {
          y[cur] += acc;
          rec.store(y_base + cur * 8, 8);
          acc = 0.0;
          ++cur;
        }
        rec.load(col_base + g * 4, 4);
        rec.load(val_base + g * 8, 8);
        const auto col = static_cast<std::size_t>(col_idx_[g]);
        rec.load(x_base + col * 8, 8);
        acc += vals_[g] * x[col];
      }
      y[cur] += acc;
      rec.store(y_base + cur * 8, 8);
    }
  }

  /// Payload bytes of the tiled structure.
  std::size_t bytes() const;

  /// CSR5's sigma auto-tuning heuristic (Liu & Vinter §4.1): the tile
  /// depth follows the mean row length so a tile covers a handful of rows
  /// per lane — short rows get shallow tiles (less segmented-sum overhead
  /// per row boundary), long rows deep ones (more sequential reuse).
  static int autotune_sigma(const sparse::Csr& a);

 private:
  sparse::index_t rows_ = 0;
  sparse::index_t cols_ = 0;
  int omega_ = 4;
  int sigma_ = 16;
  /// Values and column indices in tile-interleaved (lane-major) order;
  /// the tail that does not fill a tile is stored in CSR order.
  std::vector<double> vals_;
  std::vector<sparse::index_t> col_idx_;
  /// Row containing the first element of each full tile.
  std::vector<sparse::index_t> tile_row_;
  /// Per-tile bit flags: bit k set when the k-th element (in original CSR
  /// order within the tile) starts a new row. One 64-bit word per 64
  /// elements, ceil(tile_size/64) words per tile.
  std::vector<std::uint64_t> bit_flag_;
  std::size_t tail_start_ = 0;  ///< first nonzero handled by the CSR tail
  std::vector<sparse::offset_t> row_ptr_;  ///< original row pointers

  std::size_t tile_size() const { return static_cast<std::size_t>(omega_) * sigma_; }
  std::size_t flag_words_per_tile() const { return (tile_size() + 63) / 64; }
};

}  // namespace opm::kernels
