#include "kernels/cholesky.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "trace/recorder.hpp"

namespace opm::kernels {

bool cholesky_tiled(dense::Matrix& a, std::size_t tile) {
  if (a.rows() != a.cols()) throw std::invalid_argument("cholesky_tiled: matrix must be square");
  trace::NullRecorder null;
  return cholesky_instrumented(a, tile, null);
}

bool cholesky_reference(dense::Matrix& a) {
  if (a.rows() != a.cols()) throw std::invalid_argument("cholesky_reference: square required");
  return dense::potrf_lower_block(a.data(), a.cols(), a.rows());
}

double cholesky_residual(const dense::Matrix& original, const dense::Matrix& l) {
  const std::size_t n = original.rows();
  double worst = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double acc = 0.0;
      for (std::size_t p = 0; p <= std::min(i, j); ++p) acc += l(i, p) * l(j, p);
      worst = std::max(worst, std::abs(acc - original(i, j)));
    }
  }
  return worst;
}

LocalityModel cholesky_model(const sim::Platform& platform, double n, double nb_in) {
  LocalityModel m;
  const double nb = std::clamp(nb_in, 8.0, n);
  m.flops = n * n * n / 3.0;
  m.total_bytes = 8.0 * (n * n * n / 3.0) / 3.0;  // register reuse ~3x
  m.footprint = 8.0 * n * n;  // in-place factorization

  const double cold_bytes = 16.0 * n * n;  // read A + write L
  const double footprint = m.footprint;
  // One third of GEMM's tile traffic (the trailing update dominates),
  // with the same quadratic thrash for oversized tiles. On a many-core
  // machine Cholesky's panel/update mix reuses tiles across cores far
  // worse than GEMM, so each core effectively owns a slice of the shared
  // cache — the paper's "suboptimal tiling for L2" (section 4.2.1 I),
  // which is why KNL's MCDRAM cache lifts Cholesky's *peak* (907.8 ->
  // 1104.7 GFlop/s) while GEMM's barely moves.
  const double share = platform.cores >= 32 ? 4.0 : 1.0;
  m.miss_bytes = [n, nb, cold_bytes, footprint, share](double capacity) {
    const double fit_edge = std::sqrt(std::max(capacity, 1.0) / (24.0 * share));
    double nb_eff = nb;
    if (nb > fit_edge) nb_eff = fit_edge * (fit_edge / nb);
    const double traffic = 32.0 * n * n * n / (3.0 * std::max(nb_eff, 1.0));
    const double f = capacity_miss_fraction(footprint, capacity);
    return cold_bytes + std::max(0.0, traffic - cold_bytes) * f;
  };

  // The panel factorization serializes part of the work, so Cholesky sits
  // a little below GEMM's efficiency.
  m.compute_efficiency = 0.84 * (nb / (nb + 96.0)) * (n / (n + 1024.0));
  m.mlp_max = 8.0 * platform.cores;
  return m;
}

}  // namespace opm::kernels
