#include "kernels/spmv.hpp"

#include <algorithm>
#include <stdexcept>

namespace opm::kernels {

void spmv_csr(const sparse::Csr& a, std::span<const double> x, std::span<double> y) {
  if (x.size() != static_cast<std::size_t>(a.cols) ||
      y.size() != static_cast<std::size_t>(a.rows))
    throw std::invalid_argument("spmv_csr: size mismatch");
  for (sparse::index_t r = 0; r < a.rows; ++r) {
    double acc = 0.0;
    for (sparse::offset_t k = a.row_ptr[static_cast<std::size_t>(r)];
         k < a.row_ptr[static_cast<std::size_t>(r) + 1]; ++k)
      acc += a.values[static_cast<std::size_t>(k)] *
             x[static_cast<std::size_t>(a.col_idx[static_cast<std::size_t>(k)])];
    y[static_cast<std::size_t>(r)] = acc;
  }
}

LocalityModel spmv_model(const sim::Platform& platform, const SpmvShape& shape) {
  LocalityModel m;
  const double rows = std::max(shape.rows, 1.0);
  const double nnz = std::max(shape.nnz, 1.0);
  m.flops = nnz + 2.0 * rows;  // Table 2

  // Streaming component: values (8) + column indices (4) per nonzero, row
  // pointers + y per row — read once per SpMV, no intra-run reuse.
  const double stream_bytes = 12.0 * nnz + 12.0 * rows;
  // Gather component: nnz accesses into the 8·rows-byte x vector. With
  // locality l, (1-l) of the gathers stray far from the diagonal and pull
  // a fresh line (64 B) when x does not fit in cache; local gathers hit.
  const double x_bytes = 8.0 * rows;
  const double gather_line_bytes = 32.0;  // average useful fraction of a 64B line
  const double gather_miss_pool = gather_line_bytes * nnz * (1.0 - shape.locality);

  m.total_bytes = stream_bytes + 8.0 * nnz;  // every gather hits L1's port
  m.footprint = stream_bytes + x_bytes;

  const double footprint = m.footprint;
  m.miss_bytes = [stream_bytes, x_bytes, gather_miss_pool, footprint](double capacity) {
    const double stream_miss = stream_bytes * capacity_miss_fraction(footprint, capacity);
    // x reuse: once the vector fits in (half) the capacity, the gathers
    // stop missing; its compulsory traffic is folded into the footprint
    // term so modes converge exactly for cache-resident matrices.
    const double x_miss =
        gather_miss_pool * capacity_miss_fraction(x_bytes, capacity * 0.5);
    return stream_miss + x_miss;
  };

  // SpMV retires only ~2 flops per 5-6 instructions (index load, value
  // load, gather, FMA), so its ceiling is a small slice of DP peak —
  // calibrated to Tables 4/5 levels (≈9-10 GFlop/s best on Broadwell,
  // ≈46 GFlop/s MCDRAM-bound on KNL). CSR5's tile-balanced segmented sum
  // tolerates row-length skew; the CSR row loop does not.
  const double imbalance = std::max(shape.row_cv, 0.0);
  // KNL's narrow in-order-ish cores retire the scalar index work at an
  // even smaller fraction of the very wide AVX-512 peak (Table 5: best
  // 46.5 GFlop/s ≈ 1.5% of DP peak).
  const double base = platform.cores >= 32 ? 0.016 : 0.050;
  m.compute_efficiency = shape.csr5 ? base / (1.0 + 0.15 * imbalance)
                                    : 0.7 * base / (1.0 + 0.60 * imbalance);
  // Gathers overlap well (no dependencies between rows).
  m.mlp_max = 10.0 * platform.cores;
  return m;
}

}  // namespace opm::kernels
