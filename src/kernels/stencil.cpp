#include "kernels/stencil.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace opm::kernels {

std::array<double, kStencilRadius + 1> iso3dfd_coefficients() {
  // Standard 16th-order central-difference weights (normalized variant
  // used by iso3dfd-style benchmarks). The center weight is the 3D value
  // (3x the 1D -3.0548446) so a constant field has zero Laplacian:
  // c0 + 6 * sum(c1..c8) == 0.
  return {-9.1645134, +1.7777778, -0.3111111, +0.0754148, -0.0176767,
          +0.0034846, -0.0005188, +0.0000507, -0.0000024};
}

StencilGrid::StencilGrid(std::size_t nx_, std::size_t ny_, std::size_t nz_)
    : nx(nx_), ny(ny_), nz(nz_), current(nx_ * ny_ * nz_, 0.0), previous(nx_ * ny_ * nz_, 0.0) {}

void StencilGrid::seed(std::uint64_t seed_value) {
  util::Xoshiro256 rng(seed_value);
  for (std::size_t i = 0; i < current.size(); ++i) {
    current[i] = rng.uniform(-1.0, 1.0);
    previous[i] = current[i] * 0.99;
  }
}

void stencil_step(StencilGrid& grid, std::size_t bx, std::size_t by) {
  trace::NullRecorder null;
  stencil_step_instrumented(grid, bx, by, null);
}

void stencil_step_reference(StencilGrid& grid) {
  // Unblocked = one block covering the whole interior.
  stencil_step(grid, grid.nx, grid.ny);
}

void stencil_run(StencilGrid& grid, std::size_t steps, std::size_t bx, std::size_t by) {
  for (std::size_t s = 0; s < steps; ++s) {
    stencil_step(grid, bx, by);
    std::swap(grid.current, grid.previous);
  }
}

LocalityModel stencil_model(const sim::Platform& platform, double n_edge,
                            double block_working_set) {
  LocalityModel m;
  const double cells = n_edge * n_edge * n_edge;
  m.flops = 61.0 * cells;  // Table 2 (per sweep)
  m.footprint = 16.0 * cells;  // u(t) and u(t-1)
  // 49 current-grid reads + previous read + write per cell hit L1.
  m.total_bytes = 8.0 * cells * 51.0;

  const double footprint = m.footprint;
  m.miss_bytes = [cells, footprint, block_working_set](double capacity) {
    // Streaming floor: read u(t) and u(t-1), write u(t+1) once per sweep.
    const double stream = 24.0 * cells * capacity_miss_fraction(footprint, capacity);
    // Neighbour re-reads: when the blocked working set (a radius-deep slab
    // of the active tile, ~3 MB with the paper's 64x64x96 blocks) does not
    // fit, each plane is re-fetched for its z-neighbours — up to ~4 extra
    // grid reads.
    const double refetch =
        32.0 * cells * capacity_miss_fraction(block_working_set, capacity);
    return stream + refetch;
  };

  // Vector folding gets iso3dfd to ~26 % of DP peak on both machines
  // (Tables 4/5: 61.9/236.8 and 808.6/3072).
  m.compute_efficiency = 0.27;
  m.mlp_max = 12.0 * platform.cores;
  return m;
}

}  // namespace opm::kernels
