#pragma once

#include <span>

#include "kernels/csr5.hpp"
#include "kernels/model.hpp"
#include "sparse/formats.hpp"
#include "trace/recorder.hpp"

/// SpMV — sparse matrix-vector multiply.
///
/// Two implementations: the conventional CSR row loop (the baseline the
/// CSR5 paper compares against) and the CSR5 tiled kernel (Csr5Matrix).
/// The analytical model captures the two traffic components that drive the
/// paper's sparse results: the streaming matrix read (no reuse) and the
/// gathered x-vector reads (reuse governed by the structure's locality).
namespace opm::kernels {

/// Baseline CSR SpMV: y = A·x.
void spmv_csr(const sparse::Csr& a, std::span<const double> x, std::span<double> y);

/// Instrumented CSR SpMV. Virtual layout: row_ptr at 0, then col_idx,
/// values, x, y — contiguous, so flat-mode placement is meaningful.
template <trace::Recorder R>
void spmv_csr_instrumented(const sparse::Csr& a, std::span<const double> x,
                           std::span<double> y, R& rec) {
  const std::uint64_t ptr_base = 0;
  const std::uint64_t col_base = ptr_base + a.row_ptr.size() * 8;
  const std::uint64_t val_base = col_base + a.col_idx.size() * 4;
  const std::uint64_t x_base = val_base + a.values.size() * 8;
  const std::uint64_t y_base = x_base + x.size() * 8;

  for (sparse::index_t r = 0; r < a.rows; ++r) {
    rec.load(ptr_base + static_cast<std::uint64_t>(r) * 8, 16);  // row_ptr[r], row_ptr[r+1]
    double acc = 0.0;
    for (sparse::offset_t k = a.row_ptr[static_cast<std::size_t>(r)];
         k < a.row_ptr[static_cast<std::size_t>(r) + 1]; ++k) {
      const auto kk = static_cast<std::uint64_t>(k);
      rec.load(col_base + kk * 4, 4);
      rec.load(val_base + kk * 8, 8);
      const auto c = static_cast<std::size_t>(a.col_idx[static_cast<std::size_t>(k)]);
      rec.load(x_base + static_cast<std::uint64_t>(c) * 8, 8);
      acc += a.values[static_cast<std::size_t>(k)] * x[c];
    }
    y[static_cast<std::size_t>(r)] = acc;
    rec.store(y_base + static_cast<std::uint64_t>(r) * 8, 8);
  }
}

/// Structural inputs of the SpMV analytical model.
struct SpmvShape {
  double rows = 0.0;
  double nnz = 0.0;
  /// Vector-access locality in [0,1] (see sparse::MatrixDescriptor).
  double locality = 0.5;
  /// Coefficient of variation of row lengths (load imbalance).
  double row_cv = 0.5;
  bool csr5 = true;  ///< CSR5 kernel (balanced) vs CSR baseline
};

/// Analytical model of one SpMV execution on `platform`.
LocalityModel spmv_model(const sim::Platform& platform, const SpmvShape& shape);

}  // namespace opm::kernels
