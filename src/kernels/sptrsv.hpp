#pragma once

#include <span>
#include <vector>

#include "kernels/model.hpp"
#include "sparse/collection.hpp"
#include "sparse/formats.hpp"
#include "trace/recorder.hpp"

/// SpTRSV — sparse lower-triangular solve L·x = b.
///
/// Level-set scheduling in the style of the paper's SpMP/P2P solver (Park
/// et al.): rows are grouped into dependency levels; rows within a level
/// are independent and run in parallel, levels synchronize. The number and
/// width of levels is *input-defined*, which is why SpTRSV's memory-level
/// parallelism — and hence whether MCDRAM helps or hurts (paper section
/// 4.2.2) — varies per matrix.
namespace opm::kernels {

/// Dependency levels of a lower-triangular matrix.
struct LevelSchedule {
  /// Rows permuted so each level is contiguous.
  std::vector<sparse::index_t> order;
  /// Level boundaries into `order` (levels() + 1 entries).
  std::vector<sparse::offset_t> level_ptr;

  std::size_t levels() const { return level_ptr.empty() ? 0 : level_ptr.size() - 1; }
  /// Mean rows per level — the solver's available parallelism.
  double average_parallelism() const;
};

/// Builds the level schedule of lower-triangular `l` (diagonal required).
LevelSchedule build_level_schedule(const sparse::Csr& l);

/// Solves L·x = b by forward substitution in level order.
void sptrsv_levelset(const sparse::Csr& l, const LevelSchedule& schedule,
                     std::span<const double> b, std::span<double> x);

/// Reference row-by-row forward substitution (for tests).
void sptrsv_reference(const sparse::Csr& l, std::span<const double> b, std::span<double> x);

/// Max-norm residual ‖L·x - b‖_inf.
double sptrsv_residual(const sparse::Csr& l, std::span<const double> x,
                       std::span<const double> b);

/// Instrumented level-set solve. Virtual layout: row_ptr, col_idx, values,
/// b, x contiguous from address 0.
template <trace::Recorder R>
void sptrsv_instrumented(const sparse::Csr& l, const LevelSchedule& schedule,
                         std::span<const double> b, std::span<double> x, R& rec) {
  const std::uint64_t ptr_base = 0;
  const std::uint64_t col_base = ptr_base + l.row_ptr.size() * 8;
  const std::uint64_t val_base = col_base + l.col_idx.size() * 4;
  const std::uint64_t b_base = val_base + l.values.size() * 8;
  const std::uint64_t x_base = b_base + b.size() * 8;

  for (std::size_t lev = 0; lev < schedule.levels(); ++lev) {
    for (sparse::offset_t i = schedule.level_ptr[lev]; i < schedule.level_ptr[lev + 1]; ++i) {
      const auto r = static_cast<std::size_t>(schedule.order[static_cast<std::size_t>(i)]);
      rec.load(ptr_base + r * 8, 16);
      rec.load(b_base + r * 8, 8);
      double acc = b[r];
      double diag = 1.0;
      for (sparse::offset_t k = l.row_ptr[r]; k < l.row_ptr[r + 1]; ++k) {
        const auto kk = static_cast<std::size_t>(k);
        rec.load(col_base + kk * 4, 4);
        rec.load(val_base + kk * 8, 8);
        const auto c = static_cast<std::size_t>(l.col_idx[kk]);
        if (c == r) {
          diag = l.values[kk];
        } else {
          rec.load(x_base + c * 8, 8);
          acc -= l.values[kk] * x[c];
        }
      }
      x[r] = acc / diag;
      rec.store(x_base + r * 8, 8);
    }
  }
}

/// Structural inputs of the SpTRSV analytical model.
struct SptrsvShape {
  double rows = 0.0;
  double nnz = 0.0;
  double locality = 0.5;
  /// Mean rows per dependency level (LevelSchedule::average_parallelism).
  double avg_parallelism = 1.0;
  /// Number of dependency levels (LevelSchedule::levels()); every level
  /// boundary costs one thread barrier. 0 derives rows/avg_parallelism.
  double levels = 0.0;
};

/// Analytical model of one SpTRSV execution on `platform`.
LocalityModel sptrsv_model(const sim::Platform& platform, const SptrsvShape& shape);

/// Estimates level-set parallelism for a synthetic-suite member without
/// materializing it (family-structural reasoning; validated in tests
/// against real LevelSchedules).
double estimate_sptrsv_parallelism(const sparse::MatrixDescriptor& d);

}  // namespace opm::kernels
