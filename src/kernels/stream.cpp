#include "kernels/stream.hpp"

#include <stdexcept>

namespace opm::kernels {

void stream_triad(std::span<double> a, std::span<const double> b, std::span<const double> c,
                  double alpha) {
  if (a.size() != b.size() || a.size() != c.size())
    throw std::invalid_argument("stream_triad: size mismatch");
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = b[i] + alpha * c[i];
}

void stream_triad_nt(std::span<double> a, std::span<const double> b,
                     std::span<const double> c, double alpha, sim::MemorySystem& system) {
  if (a.size() != b.size() || a.size() != c.size())
    throw std::invalid_argument("stream_triad_nt: size mismatch");
  const std::uint64_t a_base = 0;
  const std::uint64_t b_base = a.size() * 8;
  const std::uint64_t c_base = b_base + b.size() * 8;
  for (std::size_t i = 0; i < a.size(); ++i) {
    system.load(b_base + i * 8, 8);
    system.load(c_base + i * 8, 8);
    a[i] = b[i] + alpha * c[i];
    system.store_nt(a_base + i * 8, 8);
  }
}

LocalityModel stream_model(const sim::Platform& platform, double n, bool nt_stores) {
  LocalityModel m;
  m.flops = 2.0 * n;  // Table 2
  // b + c reads plus the write stream; write-allocate adds the RFO read
  // unless streaming stores bypass the cache.
  m.total_bytes = (nt_stores ? 24.0 : 32.0) * n;
  m.footprint = 24.0 * n;  // the three arrays

  const double footprint = m.footprint;
  const double bytes = m.total_bytes;
  m.miss_bytes = [bytes, footprint](double capacity) {
    // No reuse within a pass: across repeated passes everything hits once
    // the arrays fit, everything misses once they do not.
    return bytes * capacity_miss_fraction(footprint, capacity);
  };

  m.compute_efficiency = 1.0;  // never compute-bound
  // Pure linear streams prefetch perfectly: enough outstanding lines to
  // saturate even MCDRAM's 490 GB/s at 160 ns (needs ~1225 lines).
  m.mlp_max = 20.0 * platform.cores;
  return m;
}

}  // namespace opm::kernels
