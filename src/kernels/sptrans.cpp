#include "kernels/sptrans.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace opm::kernels {

sparse::Csc sptrans_scan(const sparse::Csr& a, int partitions) {
  if (partitions < 1) throw std::invalid_argument("sptrans_scan: partitions must be >= 1");
  const std::size_t nnz = a.nnz();
  const auto cols = static_cast<std::size_t>(a.cols);
  const auto parts = static_cast<std::size_t>(partitions);

  // Pass 1: per-partition column histograms (each partition owns a
  // contiguous nnz range, as the parallel algorithm would).
  std::vector<std::size_t> bounds(parts + 1);
  for (std::size_t p = 0; p <= parts; ++p) bounds[p] = nnz * p / parts;
  std::vector<sparse::offset_t> hist(parts * cols, 0);
  for (std::size_t p = 0; p < parts; ++p)
    for (std::size_t k = bounds[p]; k < bounds[p + 1]; ++k)
      ++hist[p * cols + static_cast<std::size_t>(a.col_idx[k])];

  // Pass 2: vertical scan — for each column, prefix-sum across partitions
  // on top of the global column offsets.
  sparse::Csc out;
  out.rows = a.rows;
  out.cols = a.cols;
  out.col_ptr.assign(cols + 1, 0);
  for (std::size_t c = 0; c < cols; ++c)
    for (std::size_t p = 0; p < parts; ++p) out.col_ptr[c + 1] += hist[p * cols + c];
  std::partial_sum(out.col_ptr.begin(), out.col_ptr.end(), out.col_ptr.begin());

  std::vector<sparse::offset_t> cursor(parts * cols);
  for (std::size_t c = 0; c < cols; ++c) {
    sparse::offset_t off = out.col_ptr[c];
    for (std::size_t p = 0; p < parts; ++p) {
      cursor[p * cols + c] = off;
      off += hist[p * cols + c];
    }
  }

  // Pass 3: scatter. Each partition writes through its own cursors, so
  // no atomics are needed (the algorithm's selling point).
  out.row_idx.resize(nnz);
  out.values.resize(nnz);
  std::vector<sparse::index_t> row_of(nnz);
  for (sparse::index_t r = 0; r < a.rows; ++r)
    for (sparse::offset_t k = a.row_ptr[static_cast<std::size_t>(r)];
         k < a.row_ptr[static_cast<std::size_t>(r) + 1]; ++k)
      row_of[static_cast<std::size_t>(k)] = r;
  for (std::size_t p = 0; p < parts; ++p) {
    for (std::size_t k = bounds[p]; k < bounds[p + 1]; ++k) {
      const auto c = static_cast<std::size_t>(a.col_idx[k]);
      const auto pos = static_cast<std::size_t>(cursor[p * cols + c]++);
      out.row_idx[pos] = row_of[k];
      out.values[pos] = a.values[k];
    }
  }
  return out;
}

sparse::Csc sptrans_merge(const sparse::Csr& a, std::size_t block_nnz) {
  if (block_nnz == 0) throw std::invalid_argument("sptrans_merge: block_nnz must be > 0");
  const std::size_t nnz = a.nnz();

  // Expand to (col, row, val) triples block by block; sort each block by
  // (col, row) — rows are already ascending within a column after a
  // stable pass, but we sort pairs explicitly for clarity.
  struct Entry {
    sparse::index_t col;
    sparse::index_t row;
    double val;
  };
  std::vector<sparse::index_t> row_of(nnz);
  for (sparse::index_t r = 0; r < a.rows; ++r)
    for (sparse::offset_t k = a.row_ptr[static_cast<std::size_t>(r)];
         k < a.row_ptr[static_cast<std::size_t>(r) + 1]; ++k)
      row_of[static_cast<std::size_t>(k)] = r;

  const std::size_t blocks = (nnz + block_nnz - 1) / std::max<std::size_t>(block_nnz, 1);
  std::vector<std::vector<Entry>> sorted(std::max<std::size_t>(blocks, 1));
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t lo = b * block_nnz;
    const std::size_t hi = std::min(nnz, lo + block_nnz);
    auto& blk = sorted[b];
    blk.reserve(hi - lo);
    for (std::size_t k = lo; k < hi; ++k)
      blk.push_back({a.col_idx[k], row_of[k], a.values[k]});
    std::sort(blk.begin(), blk.end(), [](const Entry& x, const Entry& y) {
      return x.col != y.col ? x.col < y.col : x.row < y.row;
    });
  }

  // Multiway merge of the sorted blocks into CSC arrays.
  sparse::Csc out;
  out.rows = a.rows;
  out.cols = a.cols;
  out.col_ptr.assign(static_cast<std::size_t>(a.cols) + 1, 0);
  out.row_idx.reserve(nnz);
  out.values.reserve(nnz);

  std::vector<std::size_t> head(sorted.size(), 0);
  while (out.row_idx.size() < nnz) {
    std::size_t best = sorted.size();
    for (std::size_t b = 0; b < sorted.size(); ++b) {
      if (head[b] >= sorted[b].size()) continue;
      if (best == sorted.size()) {
        best = b;
        continue;
      }
      const Entry& x = sorted[b][head[b]];
      const Entry& y = sorted[best][head[best]];
      if (x.col < y.col || (x.col == y.col && x.row < y.row)) best = b;
    }
    const Entry& e = sorted[best][head[best]++];
    ++out.col_ptr[static_cast<std::size_t>(e.col) + 1];
    out.row_idx.push_back(e.row);
    out.values.push_back(e.val);
  }
  std::partial_sum(out.col_ptr.begin(), out.col_ptr.end(), out.col_ptr.begin());
  return out;
}

LocalityModel sptrans_model(const sim::Platform& platform, const SptransShape& shape) {
  LocalityModel m;
  const double rows = std::max(shape.rows, 1.0);
  const double nnz = std::max(shape.nnz, 2.0);
  m.flops = nnz * std::log2(nnz);  // Table 2 "operations" (index work)

  // Read stream: col indices + values; write stream: transposed copies.
  const double read_bytes = 12.0 * nnz + 8.0 * rows;
  const double write_bytes = 12.0 * nnz;
  // Scatter misses: ScanTrans writes through per-column cursors scattered
  // across the output; MergeTrans keeps each pass inside an L2-sized
  // block, trading scatter misses for extra merge-round streaming.
  const double scatter_pool =
      (shape.merge_based ? 0.15 : 1.0) * 48.0 * nnz * (1.0 - shape.locality);
  const double stream_bytes =
      (read_bytes + write_bytes) * (shape.merge_based ? 1.6 : 1.0);

  m.total_bytes = stream_bytes + 8.0 * nnz;
  m.footprint = read_bytes + write_bytes;

  const double footprint = m.footprint;
  m.miss_bytes = [stream_bytes, scatter_pool, footprint](double capacity) {
    const double stream_miss = stream_bytes * capacity_miss_fraction(footprint, capacity);
    const double scatter_miss =
        scatter_pool * capacity_miss_fraction(footprint * 0.5, capacity);
    return stream_miss + scatter_miss;
  };

  // Pure index manipulation: the "GFlop/s" metric (nnz·log nnz ops) sits
  // far below DP peak. Calibrated so the absolute levels match the
  // paper's Tables 4/5 (≈20 GFlop/s on Broadwell, ≈5 on KNL: KNL's weak
  // scalar cores hurt the merge passes).
  m.compute_efficiency = shape.merge_based ? 0.0016 : 0.085;
  m.mlp_max = 8.0 * platform.cores;
  return m;
}

}  // namespace opm::kernels
