#pragma once

#include <span>

#include "kernels/model.hpp"
#include "sparse/formats.hpp"
#include "trace/recorder.hpp"

/// SpTRANS — sparse matrix transposition, CSR -> CSC.
///
/// Two algorithms mirroring the paper's choices (Wang et al., ICS'16):
/// ScanTrans (used on Broadwell) — per-partition column histograms, a
/// vertical scan to offsets, then a scatter pass; and MergeTrans (used on
/// KNL) — nnz blocks sorted independently, then multiway-merged, which
/// keeps each pass inside the L2-sized block (the paper's explanation for
/// MCDRAM's negligible SpTRANS gains, section 4.2.2).
namespace opm::kernels {

/// ScanTrans with `partitions` histogram partitions (the parallel
/// decomposition parameter; execution here is serial but the access
/// pattern matches the parallel algorithm).
sparse::Csc sptrans_scan(const sparse::Csr& a, int partitions = 4);

/// MergeTrans with blocks of `block_nnz` nonzeros, multiway-merged.
sparse::Csc sptrans_merge(const sparse::Csr& a, std::size_t block_nnz = 1 << 16);

/// Instrumented ScanTrans scatter pass (the traffic-dominant phase).
/// Virtual layout: input col_idx at 0, then input values, then output
/// row_idx, output values, column cursors.
template <trace::Recorder R>
sparse::Csc sptrans_scan_instrumented(const sparse::Csr& a, R& rec) {
  sparse::Csc out;
  out.rows = a.rows;
  out.cols = a.cols;
  out.col_ptr.assign(static_cast<std::size_t>(a.cols) + 1, 0);
  out.row_idx.resize(a.nnz());
  out.values.resize(a.nnz());

  const std::uint64_t icol_base = 0;
  const std::uint64_t ival_base = icol_base + a.nnz() * 4;
  const std::uint64_t orow_base = ival_base + a.nnz() * 8;
  const std::uint64_t oval_base = orow_base + a.nnz() * 4;
  const std::uint64_t cur_base = oval_base + a.nnz() * 8;

  // Histogram pass.
  for (std::size_t k = 0; k < a.nnz(); ++k) {
    rec.load(icol_base + k * 4, 4);
    ++out.col_ptr[static_cast<std::size_t>(a.col_idx[k]) + 1];
  }
  for (std::size_t c = 0; c < static_cast<std::size_t>(a.cols); ++c)
    out.col_ptr[c + 1] += out.col_ptr[c];

  // Scatter pass.
  std::vector<sparse::offset_t> cursor(out.col_ptr.begin(), out.col_ptr.end() - 1);
  for (sparse::index_t r = 0; r < a.rows; ++r) {
    for (sparse::offset_t k = a.row_ptr[static_cast<std::size_t>(r)];
         k < a.row_ptr[static_cast<std::size_t>(r) + 1]; ++k) {
      const auto kk = static_cast<std::size_t>(k);
      rec.load(icol_base + kk * 4, 4);
      rec.load(ival_base + kk * 8, 8);
      const auto c = static_cast<std::size_t>(a.col_idx[kk]);
      rec.load(cur_base + c * 8, 8);
      const auto pos = static_cast<std::size_t>(cursor[c]++);
      rec.store(cur_base + c * 8, 8);
      out.row_idx[pos] = r;
      out.values[pos] = a.values[kk];
      rec.store(orow_base + pos * 4, 4);
      rec.store(oval_base + pos * 8, 8);
    }
  }
  return out;
}

/// Structural inputs of the SpTRANS analytical model.
struct SptransShape {
  double rows = 0.0;
  double nnz = 0.0;
  double locality = 0.5;   ///< scatter-target locality (diagonal-ness)
  bool merge_based = false;  ///< MergeTrans (KNL) vs ScanTrans (Broadwell)
};

/// Analytical model of one SpTRANS on `platform`.
LocalityModel sptrans_model(const sim::Platform& platform, const SptransShape& shape);

}  // namespace opm::kernels
