#include "kernels/model.hpp"

#include <algorithm>
#include <cmath>

#include "util/units.hpp"

namespace opm::kernels {

double capacity_miss_fraction(double ws, double capacity, double sharpness) {
  if (ws <= 0.0) return 0.0;
  if (capacity <= 0.0) return 1.0;
  // Logistic in the log domain: 0.5 exactly at ws == capacity. This is the
  // smooth stand-in for the LRU cliff; real traces transition over roughly
  // one octave, which sharpness ≈ 6 matches.
  const double ratio = capacity / ws;
  return 1.0 / (1.0 + std::pow(ratio, sharpness));
}

namespace {

/// MLP availability for misses past a capacity `reference`: when the
/// footprint barely exceeds it, misses are sparse in the instruction
/// stream and cannot overlap — the paper's cache-valley mechanism ("the
/// memory-level-parallelism at this point is insufficient to saturate the
/// bandwidth of the lower memory hierarchy", Figure 6). Ramps to 1 once
/// the footprint is ~2.5x the reference capacity (the paper's valleys are
/// narrow dips right past each cache peak).
///
/// Demand misses are generated at the last *on-chip* cache, so OPM tiers
/// and backing devices all ramp against the on-chip capacity: an OPM tier
/// filters bytes away from the device but does not change the
/// parallelism of the miss stream — which is exactly why adding an OPM
/// can never hurt (paper section 5.1).
double mlp_ramp(double footprint, double reference) {
  if (reference <= 0.0) return 1.0;
  const double r = footprint / reference;
  if (r <= 1.0) return 0.05;
  return std::clamp((r - 1.0) / 1.5, 0.05, 1.0);
}

double effective_tier_capacity(const sim::CacheTierSpec& tier, double dm_factor) {
  double cap = static_cast<double>(tier.geometry.capacity);
  if (tier.kind == sim::TierKind::kMemorySide && tier.geometry.associativity == 1)
    cap *= dm_factor;  // direct-mapped conflict derating
  return cap;
}

}  // namespace

sim::Workload build_workload(const sim::Platform& platform, const LocalityModel& model) {
  sim::Workload work;
  work.flops = model.flops;
  work.compute_efficiency = model.compute_efficiency;
  work.mlp_lines = model.mlp_max;
  work.line_size = 64.0;
  work.fixed_time = model.fixed_seconds;

  // Demand misses emerge from the last on-chip (standard) cache; every
  // channel below it shares that miss stream's parallelism ramp.
  double onchip_cap = 0.0;
  for (const auto& tier : platform.tiers)
    if (tier.kind == sim::TierKind::kStandard)
      onchip_cap += static_cast<double>(tier.geometry.capacity);

  double cap_above = 0.0;
  for (const auto& tier : platform.tiers) {
    sim::ChannelLoad ch;
    ch.name = tier.geometry.name;
    ch.bytes = cap_above <= 0.0 ? model.total_bytes : model.miss_bytes(cap_above);
    ch.bandwidth = tier.bandwidth;
    ch.tag_overhead = tier.tag_overhead;
    // Fold the per-channel MLP ramp into the latency term: the timing
    // model computes concurrency bandwidth as mlp * line / latency, so
    // dividing the ramp out of the latency scales MLP per channel.
    const double reference = tier.kind == sim::TierKind::kStandard ? cap_above : onchip_cap;
    const double ramp = mlp_ramp(model.footprint, reference);
    ch.bytes = std::min(ch.bytes, model.total_bytes);
    ch.latency = tier.latency / ramp;
    work.channels.push_back(ch);
    cap_above += effective_tier_capacity(tier, model.direct_mapped_factor);
  }

  // Backing devices: the bottom traffic splits across the flat OPM
  // partition and DDR by footprint placement (numactl --preferred).
  const double bottom = std::min(model.miss_bytes(cap_above), model.total_bytes);
  const double ramp = mlp_ramp(model.footprint, onchip_cap);
  const bool has_flat = platform.flat_opm_bytes > 0;
  const double opm_frac =
      has_flat ? std::min(1.0, static_cast<double>(platform.flat_opm_bytes) /
                                   std::max(model.footprint, 1.0))
               : 0.0;
  const bool straddles = has_flat && model.footprint > static_cast<double>(platform.flat_opm_bytes);
  const double penalty = straddles ? platform.split_penalty : 1.0;

  for (std::size_t d = 0; d < platform.devices.size(); ++d) {
    const auto& dev = platform.devices[d];
    sim::ChannelLoad ch;
    ch.name = dev.name;
    const bool is_flat_opm = has_flat && d == 0;
    ch.bytes = is_flat_opm ? bottom * opm_frac
                           : (has_flat ? bottom * (1.0 - opm_frac) : bottom);
    ch.bandwidth = dev.bandwidth;
    ch.latency = dev.latency / ramp;
    ch.penalty = penalty;
    work.channels.push_back(ch);
  }
  return work;
}

Prediction predict(const sim::Platform& platform, const LocalityModel& model) {
  Prediction out;
  out.workload = build_workload(platform, model);
  out.timing = sim::predict_time(platform, out.workload, /*double_precision=*/true);
  out.seconds = out.timing.total_time;
  out.gflops = sim::gflops(out.workload, out.timing);
  if (out.seconds > 0.0) {
    double ddr_bytes = 0.0;
    double opm_bytes = 0.0;
    std::size_t ci = platform.tiers.size();
    // Device channels follow the tier channels in build_workload order.
    for (std::size_t d = 0; d < platform.devices.size(); ++d, ++ci) {
      if (platform.devices[d].on_package)
        opm_bytes += out.workload.channels[ci].bytes;
      else
        ddr_bytes += out.workload.channels[ci].bytes;
    }
    // OPM cache tiers (eDRAM L4, MCDRAM cache mode) also draw OPM power.
    for (std::size_t t = 0; t < platform.tiers.size(); ++t)
      if (platform.tiers[t].kind != sim::TierKind::kStandard)
        opm_bytes += out.workload.channels[t].bytes;
    out.ddr_gbps = util::to_gbps(ddr_bytes / out.seconds);
    out.opm_gbps = util::to_gbps(opm_bytes / out.seconds);
    out.utilization = model.flops / (out.seconds * platform.dp_peak_flops);
  }
  return out;
}

}  // namespace opm::kernels
