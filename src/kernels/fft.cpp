#include "kernels/fft.hpp"

#include <algorithm>
#include <cmath>

namespace opm::kernels {

void fft_1d(std::span<cplx> data, bool inverse) {
  trace::NullRecorder null;
  fft_1d_instrumented(data, inverse, 0, null);
}

std::vector<cplx> dft_reference(std::span<const cplx> data, bool inverse) {
  const std::size_t n = data.size();
  std::vector<cplx> out(n);
  const double dir = inverse ? 1.0 : -1.0;
  for (std::size_t k = 0; k < n; ++k) {
    cplx acc(0.0, 0.0);
    for (std::size_t t = 0; t < n; ++t) {
      const double ang =
          dir * 2.0 * 3.14159265358979323846 * static_cast<double>(k * t % n) / static_cast<double>(n);
      acc += data[t] * cplx(std::cos(ang), std::sin(ang));
    }
    out[k] = inverse ? acc / static_cast<double>(n) : acc;
  }
  return out;
}

void fft_3d(std::span<cplx> data, std::size_t nx, std::size_t ny, std::size_t nz, bool inverse) {
  if (data.size() != nx * ny * nz) throw std::invalid_argument("fft_3d: size mismatch");
  std::vector<cplx> pencil(std::max({nx, ny, nz}));

  // Pass 1: along Y (stride nx).
  for (std::size_t z = 0; z < nz; ++z) {
    for (std::size_t x = 0; x < nx; ++x) {
      for (std::size_t y = 0; y < ny; ++y) pencil[y] = data[(z * ny + y) * nx + x];
      fft_1d(std::span(pencil.data(), ny), inverse);
      for (std::size_t y = 0; y < ny; ++y) data[(z * ny + y) * nx + x] = pencil[y];
    }
  }
  // Pass 2: along X (contiguous).
  for (std::size_t z = 0; z < nz; ++z)
    for (std::size_t y = 0; y < ny; ++y)
      fft_1d(std::span(data.data() + (z * ny + y) * nx, nx), inverse);
  // Pass 3: along Z (stride nx·ny).
  for (std::size_t y = 0; y < ny; ++y) {
    for (std::size_t x = 0; x < nx; ++x) {
      for (std::size_t z = 0; z < nz; ++z) pencil[z] = data[(z * ny + y) * nx + x];
      fft_1d(std::span(pencil.data(), nz), inverse);
      for (std::size_t z = 0; z < nz; ++z) data[(z * ny + y) * nx + x] = pencil[z];
    }
  }
}

double energy(std::span<const cplx> data) {
  double acc = 0.0;
  for (const auto& v : data) acc += std::norm(v);
  return acc;
}

LocalityModel fft_model(const sim::Platform& platform, double n_edge) {
  LocalityModel m;
  const double n_points = n_edge * n_edge * n_edge;
  const double log_n = std::log2(std::max(n_points, 2.0));
  m.flops = 5.0 * n_points * log_n;  // Table 2
  m.footprint = 16.0 * n_points;     // complex doubles, in place
  // Every butterfly stage touches the whole dataset through L1.
  m.total_bytes = 32.0 * n_points * log_n;

  const double footprint = m.footprint;
  m.miss_bytes = [n_points, footprint](double capacity) {
    // Out-of-cache FFT: with a cache holding E complex elements, log_E(N)
    // dataset passes come from below (the classic multi-pass bound). The
    // Y and Z pencil passes are strided by nx and nx*ny, so each 16-byte
    // element access drags a full 64-byte line when the pencils overflow
    // cache: on average ~3x the compulsory traffic per pass.
    constexpr double kStrideFactor = 3.0;
    const double elems = std::max(capacity / 16.0, 64.0);
    const double passes =
        std::max(1.0, std::log2(std::max(n_points, 2.0)) / std::log2(elems));
    const double traffic = kStrideFactor * 32.0 * n_points * passes;
    const double cold = 32.0 * n_points;
    const double f = capacity_miss_fraction(footprint, capacity);
    return cold * f + std::max(0.0, traffic - cold) * f;
  };

  // FFTW reaches ~19 % of DP peak on Broadwell but a far smaller fraction
  // of KNL's very wide AVX-512 peak (twiddle loads and strided pencils
  // don't vectorize well) — calibrated to the paper's Tables 4/5 levels
  // (44.7 GFlop/s best on Broadwell, 118 flat on KNL).
  m.compute_efficiency = platform.cores >= 32 ? 0.045 : 0.19;
  m.mlp_max = 8.0 * platform.cores;
  return m;
}

}  // namespace opm::kernels
