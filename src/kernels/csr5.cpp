#include "kernels/csr5.hpp"

#include <algorithm>
#include <stdexcept>

namespace opm::kernels {

Csr5Matrix Csr5Matrix::build(const sparse::Csr& a, int omega, int sigma) {
  if (omega < 1 || sigma < 1) throw std::invalid_argument("csr5: omega/sigma must be >= 1");
  Csr5Matrix out;
  out.rows_ = a.rows;
  out.cols_ = a.cols;
  out.omega_ = omega;
  out.sigma_ = sigma;
  out.row_ptr_ = a.row_ptr;

  const std::size_t nnz = a.nnz();
  const std::size_t tile = out.tile_size();
  const std::size_t full_tiles = nnz / tile;
  out.tail_start_ = full_tiles * tile;

  out.vals_.resize(nnz);
  out.col_idx_.resize(nnz);
  out.tile_row_.resize(full_tiles);
  out.bit_flag_.assign(full_tiles * out.flag_words_per_tile(), 0);

  // Row-start offsets walker: element g starts a row iff g == row_ptr[r]
  // for the next nonempty row r.
  std::size_t next_row = 0;
  auto advance_to = [&](std::size_t g) {
    while (next_row < static_cast<std::size_t>(a.rows) &&
           static_cast<std::size_t>(a.row_ptr[next_row]) < g)
      ++next_row;
  };

  // Row owning element 0 of each tile (for the tile descriptors).
  std::size_t owner_row = 0;
  auto owner_of = [&](std::size_t g) {
    while (static_cast<std::size_t>(a.row_ptr[owner_row + 1]) <= g) ++owner_row;
    return static_cast<sparse::index_t>(owner_row);
  };

  const std::size_t words = out.flag_words_per_tile();
  for (std::size_t t = 0; t < full_tiles; ++t) {
    const std::size_t base = t * tile;
    out.tile_row_[t] = nnz == 0 ? 0 : owner_of(base);
    for (std::size_t k = 0; k < tile; ++k) {
      const std::size_t g = base + k;
      // Lane-major (CSR5 column-major) placement: original in-tile
      // position k lands in lane k/sigma at depth k%sigma; storage is
      // depth-major so one SIMD row spans the omega lanes.
      const std::size_t lane = k / static_cast<std::size_t>(sigma);
      const std::size_t depth = k % static_cast<std::size_t>(sigma);
      const std::size_t s = base + depth * static_cast<std::size_t>(omega) + lane;
      out.vals_[s] = a.values[g];
      out.col_idx_[s] = a.col_idx[g];

      advance_to(g);
      const bool starts_row = next_row < static_cast<std::size_t>(a.rows) &&
                              static_cast<std::size_t>(a.row_ptr[next_row]) == g;
      if (starts_row) out.bit_flag_[t * words + k / 64] |= 1ull << (k % 64);
    }
  }
  // Tail kept in CSR order.
  for (std::size_t g = out.tail_start_; g < nnz; ++g) {
    out.vals_[g] = a.values[g];
    out.col_idx_[g] = a.col_idx[g];
  }
  return out;
}

void Csr5Matrix::spmv(std::span<const double> x, std::span<double> y) const {
  if (x.size() != static_cast<std::size_t>(cols_) || y.size() != static_cast<std::size_t>(rows_))
    throw std::invalid_argument("csr5 spmv: size mismatch");
  std::fill(y.begin(), y.end(), 0.0);

  const std::size_t tile = tile_size();
  const std::size_t words = flag_words_per_tile();
  const std::size_t full_tiles = tail_start_ / tile;

  for (std::size_t t = 0; t < full_tiles; ++t) {
    const std::size_t base = t * tile;
    std::size_t cur_row = static_cast<std::size_t>(tile_row_[t]);
    double acc = 0.0;
    // Segmented sum over the tile in original CSR order; bit flags mark
    // the row boundaries the segmented scan must respect.
    for (std::size_t k = 0; k < tile; ++k) {
      const bool flag = (bit_flag_[t * words + k / 64] >> (k % 64)) & 1ull;
      const std::size_t g = base + k;
      if (flag) {
        y[cur_row] += acc;
        acc = 0.0;
        while (static_cast<std::size_t>(row_ptr_[cur_row + 1]) <= g) ++cur_row;  // skip empties
      }
      const std::size_t lane = k / static_cast<std::size_t>(sigma_);
      const std::size_t depth = k % static_cast<std::size_t>(sigma_);
      const std::size_t s = base + depth * static_cast<std::size_t>(omega_) + lane;
      acc += vals_[s] * x[static_cast<std::size_t>(col_idx_[s])];
    }
    y[cur_row] += acc;  // carry-out partial row
  }

  // CSR-ordered tail.
  if (tail_start_ < nnz()) {
    std::size_t row = 0;
    while (static_cast<std::size_t>(row_ptr_[row + 1]) <= tail_start_) ++row;
    double acc = 0.0;
    std::size_t cur = row;
    for (std::size_t g = tail_start_; g < nnz(); ++g) {
      while (static_cast<std::size_t>(row_ptr_[cur + 1]) <= g) {
        y[cur] += acc;
        acc = 0.0;
        ++cur;
      }
      acc += vals_[g] * x[static_cast<std::size_t>(col_idx_[g])];
    }
    y[cur] += acc;
  }
}

int Csr5Matrix::autotune_sigma(const sparse::Csr& a) {
  if (a.rows <= 0 || a.nnz() == 0) return 4;
  const double mean_row = static_cast<double>(a.nnz()) / static_cast<double>(a.rows);
  // Piecewise rule mirroring the reference implementation's bounds.
  if (mean_row <= 4.0) return 4;
  if (mean_row <= 16.0) return static_cast<int>(mean_row);
  if (mean_row <= 64.0) return 16;
  return 32;
}

std::size_t Csr5Matrix::bytes() const {
  return vals_.size() * sizeof(double) + col_idx_.size() * sizeof(sparse::index_t) +
         tile_row_.size() * sizeof(sparse::index_t) + bit_flag_.size() * sizeof(std::uint64_t) +
         row_ptr_.size() * sizeof(sparse::offset_t);
}

}  // namespace opm::kernels
