#pragma once

#include <bit>
#include <complex>
#include <span>
#include <stdexcept>
#include <vector>

#include "kernels/model.hpp"
#include "trace/recorder.hpp"

/// FFT — iterative Cooley–Tukey radix-2, and 3D transforms via pencil
/// passes along each dimension (the FFTW substitute).
///
/// The paper runs 3D FFTW (1D along Y, then X, then Z with an all-to-all
/// in between, section 3.1.3); our pencil decomposition has the same
/// locality structure: each dimensional pass streams the whole dataset
/// with strided gathers, which is what makes FFT's effective working set
/// per pass the full grid.
namespace opm::kernels {

using cplx = std::complex<double>;

/// Instrumented in-place 1D FFT of power-of-two length: performs the real
/// transform while reporting every butterfly load/store to `rec`. The data
/// occupies virtual addresses [base, base + 16·n). `inverse` is normalized
/// by 1/n so ifft(fft(x)) == x.
template <trace::Recorder R>
void fft_1d_instrumented(std::span<cplx> data, bool inverse, std::uint64_t base, R& rec) {
  const std::size_t n = data.size();
  if (n == 0) return;
  if (!std::has_single_bit(n)) throw std::invalid_argument("fft: length must be a power of two");

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) {
      rec.load(base + i * 16, 16);
      rec.load(base + j * 16, 16);
      std::swap(data[i], data[j]);
      rec.store(base + i * 16, 16);
      rec.store(base + j * 16, 16);
    }
  }

  const double dir = inverse ? 1.0 : -1.0;
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = dir * 2.0 * 3.14159265358979323846 / static_cast<double>(len);
    const cplx wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      cplx w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::size_t lo = i + k;
        const std::size_t hi = i + k + len / 2;
        rec.load(base + lo * 16, 16);
        rec.load(base + hi * 16, 16);
        const cplx u = data[lo];
        const cplx v = data[hi] * w;
        data[lo] = u + v;
        data[hi] = u - v;
        rec.store(base + lo * 16, 16);
        rec.store(base + hi * 16, 16);
        w *= wlen;
      }
    }
  }
  if (inverse) {
    const double inv = 1.0 / static_cast<double>(n);
    for (auto& v : data) v *= inv;
  }
}

/// In-place 1D FFT of power-of-two length (uninstrumented).
void fft_1d(std::span<cplx> data, bool inverse);

/// Reference O(n²) DFT (tests only).
std::vector<cplx> dft_reference(std::span<const cplx> data, bool inverse);

/// In-place 3D FFT on an nx·ny·nz grid stored x-fastest. All dimensions
/// must be powers of two. Passes run along Y, then X, then Z — the
/// paper's FFTW pass order.
void fft_3d(std::span<cplx> data, std::size_t nx, std::size_t ny, std::size_t nz, bool inverse);

/// Parseval check helper: sum of |v|² over the span.
double energy(std::span<const cplx> data);

/// Analytical model of one 3D FFT (n_edge³ complex points) on `platform`.
LocalityModel fft_model(const sim::Platform& platform, double n_edge);

}  // namespace opm::kernels
