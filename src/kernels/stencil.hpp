#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <vector>

#include "kernels/model.hpp"
#include "trace/recorder.hpp"

/// Stencil — iso3dfd: 3D finite difference, 16th order in space, 2nd order
/// in time (the YASK "iso3dfd" substitute, paper section 3.1.3).
///
/// Per grid cell and time step: 61 floating-point operations reading the
/// 48 axis neighbours within radius 8 plus the center, combined with the
/// previous time step. Cache blocking over (x, y) tiles bounds the active
/// working set, exactly the knob YASK's `-b` option tunes.
namespace opm::kernels {

inline constexpr std::size_t kStencilRadius = 8;  ///< 16th order in space

/// The 9 symmetric FD coefficients c0..c8.
std::array<double, kStencilRadius + 1> iso3dfd_coefficients();

/// Dense 3D grid pair for the 2nd-order-in-time update.
struct StencilGrid {
  std::size_t nx = 0, ny = 0, nz = 0;
  std::vector<double> current;   ///< u(t)
  std::vector<double> previous;  ///< u(t-1); overwritten with u(t+1)

  StencilGrid(std::size_t nx_, std::size_t ny_, std::size_t nz_);
  std::size_t cells() const { return nx * ny * nz; }
  std::size_t index(std::size_t x, std::size_t y, std::size_t z) const {
    return (z * ny + y) * nx + x;
  }
  /// Deterministic wave-like initialization.
  void seed(std::uint64_t seed);
};

/// One iso3dfd time step with (bx, by) cache blocking; interior cells only
/// (a radius-wide halo stays fixed). `previous` receives u(t+1); callers
/// swap the buffers between steps.
void stencil_step(StencilGrid& grid, std::size_t bx, std::size_t by);

/// Unblocked reference step (tests).
void stencil_step_reference(StencilGrid& grid);

/// Runs `steps` time steps with buffer rotation: after each step the new
/// field u(t+1) becomes `current` and the old `current` becomes
/// `previous` — the standard 2nd-order-in-time leapfrog driver.
void stencil_run(StencilGrid& grid, std::size_t steps, std::size_t bx, std::size_t by);

/// Instrumented blocked step: reports every neighbour load and the output
/// store. current lives at virtual address 0, previous right after it.
template <trace::Recorder R>
void stencil_step_instrumented(StencilGrid& g, std::size_t bx, std::size_t by, R& rec) {
  const auto coeff = iso3dfd_coefficients();
  const std::uint64_t cur_base = 0;
  const std::uint64_t prev_base = g.cells() * 8;
  const std::size_t r = kStencilRadius;
  if (g.nx < 2 * r + 1 || g.ny < 2 * r + 1 || g.nz < 2 * r + 1) return;
  const std::size_t bxx = bx == 0 ? g.nx : bx;
  const std::size_t byy = by == 0 ? g.ny : by;

  for (std::size_t y0 = r; y0 < g.ny - r; y0 += byy) {
    const std::size_t y1 = std::min(y0 + byy, g.ny - r);
    for (std::size_t x0 = r; x0 < g.nx - r; x0 += bxx) {
      const std::size_t x1 = std::min(x0 + bxx, g.nx - r);
      for (std::size_t z = r; z < g.nz - r; ++z) {
        for (std::size_t y = y0; y < y1; ++y) {
          for (std::size_t x = x0; x < x1; ++x) {
            const std::size_t c = g.index(x, y, z);
            rec.load(cur_base + c * 8, 8);
            double acc = coeff[0] * g.current[c];
            for (std::size_t d = 1; d <= r; ++d) {
              const std::size_t xm = g.index(x - d, y, z), xp = g.index(x + d, y, z);
              const std::size_t ym = g.index(x, y - d, z), yp = g.index(x, y + d, z);
              const std::size_t zm = g.index(x, y, z - d), zp = g.index(x, y, z + d);
              rec.load(cur_base + xm * 8, 8);
              rec.load(cur_base + xp * 8, 8);
              rec.load(cur_base + ym * 8, 8);
              rec.load(cur_base + yp * 8, 8);
              rec.load(cur_base + zm * 8, 8);
              rec.load(cur_base + zp * 8, 8);
              acc += coeff[d] * (g.current[xm] + g.current[xp] + g.current[ym] +
                                 g.current[yp] + g.current[zm] + g.current[zp]);
            }
            rec.load(prev_base + c * 8, 8);
            // 2nd order in time: u(t+1) = 2u(t) - u(t-1) + laplacian-term.
            g.previous[c] = 2.0 * g.current[c] - g.previous[c] + 0.001 * acc;
            rec.store(prev_base + c * 8, 8);
          }
        }
      }
    }
  }
}

/// Analytical model of one iso3dfd sweep over an n_edge³ grid with the
/// given blocking working-set size (bytes; 3 MB matches the paper's
/// 64x64x96 blocks).
LocalityModel stencil_model(const sim::Platform& platform, double n_edge,
                            double block_working_set = 3.0 * 1024 * 1024);

}  // namespace opm::kernels
