#pragma once

#include <cstddef>

#include "dense/blas.hpp"
#include "dense/matrix.hpp"
#include "kernels/model.hpp"
#include "trace/recorder.hpp"

/// Cholesky decomposition — tiled right-looking factorization
/// (PLASMA/Buttari-style substitute).
///
/// A = L·Lᵀ for symmetric positive definite A; the factor L overwrites the
/// lower triangle in place. Tuning axes match the paper's Figures 8/16:
/// matrix order n and tile size nb.
namespace opm::kernels {

/// Real tiled Cholesky, in place on the lower triangle of `a`.
/// Returns false when a non-positive pivot appears (A not SPD).
bool cholesky_tiled(dense::Matrix& a, std::size_t tile);

/// Reference unblocked Cholesky (for tests).
bool cholesky_reference(dense::Matrix& a);

/// Reconstruction error ‖A - L·Lᵀ‖_max given the original matrix and the
/// computed factor (upper triangle of `l` is ignored).
double cholesky_residual(const dense::Matrix& original, const dense::Matrix& l);

/// Instrumented tiled Cholesky: the tile-op sequence (POTRF, TRSM, SYRK,
/// GEMM) reports touches to `rec` at tile-row granularity — matching real
/// traffic while keeping trace volume manageable. A lives at virtual
/// address 0.
template <trace::Recorder R>
bool cholesky_instrumented(dense::Matrix& a, std::size_t tile, R& rec) {
  const std::size_t n = a.rows();
  const std::size_t nb = tile == 0 ? n : std::min(tile, n);
  auto touch_tile = [&](std::size_t r0, std::size_t c0, std::size_t rm, std::size_t cm,
                        bool write) {
    for (std::size_t r = 0; r < rm; ++r) {
      const std::uint64_t addr = ((r0 + r) * n + c0) * 8;
      if (write)
        rec.store(addr, static_cast<std::uint32_t>(cm * 8));
      else
        rec.load(addr, static_cast<std::uint32_t>(cm * 8));
    }
  };

  for (std::size_t k0 = 0; k0 < n; k0 += nb) {
    const std::size_t km = std::min(nb, n - k0);
    touch_tile(k0, k0, km, km, false);
    if (!dense::potrf_lower_block(&a.data()[k0 * n + k0], n, km)) return false;
    touch_tile(k0, k0, km, km, true);

    for (std::size_t i0 = k0 + nb; i0 < n; i0 += nb) {
      const std::size_t im = std::min(nb, n - i0);
      touch_tile(i0, k0, im, km, false);
      touch_tile(k0, k0, km, km, false);
      dense::trsm_right_lt_block(&a.data()[k0 * n + k0], n, &a.data()[i0 * n + k0], n, im, km);
      touch_tile(i0, k0, im, km, true);
    }

    for (std::size_t j0 = k0 + nb; j0 < n; j0 += nb) {
      const std::size_t jm = std::min(nb, n - j0);
      touch_tile(j0, k0, jm, km, false);
      touch_tile(j0, j0, jm, jm, false);
      dense::syrk_lower_block(&a.data()[j0 * n + k0], n, &a.data()[j0 * n + j0], n, jm, km);
      touch_tile(j0, j0, jm, jm, true);
      for (std::size_t i0 = j0 + nb; i0 < n; i0 += nb) {
        const std::size_t im = std::min(nb, n - i0);
        touch_tile(i0, k0, im, km, false);
        touch_tile(j0, k0, jm, km, false);
        touch_tile(i0, j0, im, jm, false);
        dense::gemm_nt_sub_block(&a.data()[i0 * n + k0], n, &a.data()[j0 * n + k0], n,
                                 &a.data()[i0 * n + j0], n, im, jm, km);
        touch_tile(i0, j0, im, jm, true);
      }
    }
  }
  return true;
}

/// Analytical model of one tiled Cholesky on `platform` at order `n`,
/// tile edge `nb`.
LocalityModel cholesky_model(const sim::Platform& platform, double n, double nb);

}  // namespace opm::kernels
