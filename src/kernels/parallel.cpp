#include "kernels/parallel.hpp"

#include <stdexcept>
#include <vector>

#include "dense/blas.hpp"

namespace opm::kernels {

void spmv_csr_parallel(const sparse::Csr& a, std::span<const double> x, std::span<double> y,
                       util::ThreadPool& pool) {
  if (x.size() != static_cast<std::size_t>(a.cols) ||
      y.size() != static_cast<std::size_t>(a.rows))
    throw std::invalid_argument("spmv_csr_parallel: size mismatch");
  pool.parallel_for(0, static_cast<std::size_t>(a.rows), 256, [&](std::size_t r) {
    double acc = 0.0;
    for (sparse::offset_t k = a.row_ptr[r]; k < a.row_ptr[r + 1]; ++k)
      acc += a.values[static_cast<std::size_t>(k)] *
             x[static_cast<std::size_t>(a.col_idx[static_cast<std::size_t>(k)])];
    y[r] = acc;
  });
}

void gemm_tiled_parallel(const dense::Matrix& a, const dense::Matrix& b, dense::Matrix& c,
                         std::size_t tile, util::ThreadPool& pool) {
  const std::size_t n = a.rows();
  if (a.cols() != n || b.rows() != n || b.cols() != n || c.rows() != n || c.cols() != n)
    throw std::invalid_argument("gemm_tiled_parallel: matrices must be square, same order");
  const std::size_t nb = tile == 0 ? n : std::min(tile, n);
  const std::size_t tiles = (n + nb - 1) / nb;

  pool.parallel_for(0, tiles * tiles, 1, [&](std::size_t t) {
    const std::size_t i0 = (t / tiles) * nb;
    const std::size_t j0 = (t % tiles) * nb;
    const std::size_t im = std::min(nb, n - i0);
    const std::size_t jm = std::min(nb, n - j0);
    for (std::size_t k0 = 0; k0 < n; k0 += nb) {
      const std::size_t km = std::min(nb, n - k0);
      dense::gemm_block(&a.data()[i0 * n + k0], n, &b.data()[k0 * n + j0], n,
                        &c.data()[i0 * n + j0], n, im, jm, km);
    }
  });
}

void stream_triad_parallel(std::span<double> a, std::span<const double> b,
                           std::span<const double> c, double alpha, util::ThreadPool& pool) {
  if (a.size() != b.size() || a.size() != c.size())
    throw std::invalid_argument("stream_triad_parallel: size mismatch");
  pool.parallel_for(0, a.size(), 4096, [&](std::size_t i) { a[i] = b[i] + alpha * c[i]; });
}

void sptrsv_levelset_parallel(const sparse::Csr& l, const LevelSchedule& schedule,
                              std::span<const double> b, std::span<double> x,
                              util::ThreadPool& pool) {
  for (std::size_t lev = 0; lev < schedule.levels(); ++lev) {
    const auto lo = static_cast<std::size_t>(schedule.level_ptr[lev]);
    const auto hi = static_cast<std::size_t>(schedule.level_ptr[lev + 1]);
    pool.parallel_for(lo, hi, 64, [&](std::size_t i) {
      const auto r = static_cast<std::size_t>(schedule.order[i]);
      double acc = b[r];
      double diag = 1.0;
      for (sparse::offset_t k = l.row_ptr[r]; k < l.row_ptr[r + 1]; ++k) {
        const auto c = static_cast<std::size_t>(l.col_idx[static_cast<std::size_t>(k)]);
        const double v = l.values[static_cast<std::size_t>(k)];
        if (c == r)
          diag = v;
        else
          acc -= v * x[c];
      }
      x[r] = acc / diag;
    });
  }
}

void sptrsv_p2p(const sparse::Csr& l, std::span<const double> b, std::span<double> x) {
  const auto n = static_cast<std::size_t>(l.rows);
  if (b.size() != n || x.size() != n) throw std::invalid_argument("sptrsv_p2p: size mismatch");

  // Dependents adjacency: for each column c, the rows r > c that read
  // x[c] — i.e. the CSC of the strictly-lower part.
  std::vector<sparse::offset_t> dep_ptr(n + 1, 0);
  std::vector<sparse::index_t> dep_rows(l.nnz());
  std::vector<std::int32_t> indegree(n, 0);
  for (std::size_t r = 0; r < n; ++r) {
    for (sparse::offset_t k = l.row_ptr[r]; k < l.row_ptr[r + 1]; ++k) {
      const auto c = static_cast<std::size_t>(l.col_idx[static_cast<std::size_t>(k)]);
      if (c < r) {
        ++dep_ptr[c + 1];
        ++indegree[r];
      }
    }
  }
  for (std::size_t c = 0; c < n; ++c) dep_ptr[c + 1] += dep_ptr[c];
  {
    std::vector<sparse::offset_t> cursor(dep_ptr.begin(), dep_ptr.end() - 1);
    for (std::size_t r = 0; r < n; ++r)
      for (sparse::offset_t k = l.row_ptr[r]; k < l.row_ptr[r + 1]; ++k) {
        const auto c = static_cast<std::size_t>(l.col_idx[static_cast<std::size_t>(k)]);
        if (c < r) dep_rows[static_cast<std::size_t>(cursor[c]++)] = static_cast<sparse::index_t>(r);
      }
  }

  // Worklist execution of the dependency DAG.
  std::vector<sparse::index_t> ready;
  ready.reserve(n);
  for (std::size_t r = 0; r < n; ++r)
    if (indegree[r] == 0) ready.push_back(static_cast<sparse::index_t>(r));

  std::size_t head = 0;
  std::size_t solved = 0;
  while (head < ready.size()) {
    const auto r = static_cast<std::size_t>(ready[head++]);
    double acc = b[r];
    double diag = 0.0;
    for (sparse::offset_t k = l.row_ptr[r]; k < l.row_ptr[r + 1]; ++k) {
      const auto c = static_cast<std::size_t>(l.col_idx[static_cast<std::size_t>(k)]);
      const double v = l.values[static_cast<std::size_t>(k)];
      if (c == r)
        diag = v;
      else
        acc -= v * x[c];
    }
    if (diag == 0.0) throw std::domain_error("sptrsv_p2p: zero diagonal");
    x[r] = acc / diag;
    ++solved;
    // Release dependents whose last dependency this row resolved.
    for (sparse::offset_t k = dep_ptr[r]; k < dep_ptr[r + 1]; ++k) {
      const auto dependent = dep_rows[static_cast<std::size_t>(k)];
      if (--indegree[static_cast<std::size_t>(dependent)] == 0) ready.push_back(dependent);
    }
  }
  if (solved != n) throw std::domain_error("sptrsv_p2p: dependency cycle (not triangular?)");
}

}  // namespace opm::kernels
