#include "kernels/sptrsv.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace opm::kernels {

double LevelSchedule::average_parallelism() const {
  if (levels() == 0) return 0.0;
  return static_cast<double>(order.size()) / static_cast<double>(levels());
}

LevelSchedule build_level_schedule(const sparse::Csr& l) {
  if (l.rows != l.cols) throw std::invalid_argument("level schedule: square matrix required");
  const auto n = static_cast<std::size_t>(l.rows);
  std::vector<sparse::index_t> level(n, 0);
  sparse::index_t max_level = 0;

  // Lower-triangular: dependencies point to smaller row indices, so one
  // forward sweep computes the longest dependency chain per row.
  for (std::size_t r = 0; r < n; ++r) {
    sparse::index_t lev = 0;
    for (sparse::offset_t k = l.row_ptr[r]; k < l.row_ptr[r + 1]; ++k) {
      const sparse::index_t c = l.col_idx[static_cast<std::size_t>(k)];
      if (c > static_cast<sparse::index_t>(r))
        throw std::invalid_argument("level schedule: matrix is not lower triangular");
      if (c < static_cast<sparse::index_t>(r)) lev = std::max(lev, level[static_cast<std::size_t>(c)] + 1);
    }
    level[r] = lev;
    max_level = std::max(max_level, lev);
  }

  // Counting sort of rows by level keeps the schedule deterministic.
  LevelSchedule out;
  out.level_ptr.assign(static_cast<std::size_t>(max_level) + 2, 0);
  for (std::size_t r = 0; r < n; ++r) ++out.level_ptr[static_cast<std::size_t>(level[r]) + 1];
  for (std::size_t i = 1; i < out.level_ptr.size(); ++i) out.level_ptr[i] += out.level_ptr[i - 1];
  out.order.resize(n);
  std::vector<sparse::offset_t> cursor(out.level_ptr.begin(), out.level_ptr.end() - 1);
  for (std::size_t r = 0; r < n; ++r)
    out.order[static_cast<std::size_t>(cursor[static_cast<std::size_t>(level[r])]++)] =
        static_cast<sparse::index_t>(r);
  return out;
}

void sptrsv_levelset(const sparse::Csr& l, const LevelSchedule& schedule,
                     std::span<const double> b, std::span<double> x) {
  trace::NullRecorder null;
  sptrsv_instrumented(l, schedule, b, x, null);
}

void sptrsv_reference(const sparse::Csr& l, std::span<const double> b, std::span<double> x) {
  const auto n = static_cast<std::size_t>(l.rows);
  if (b.size() != n || x.size() != n) throw std::invalid_argument("sptrsv: size mismatch");
  for (std::size_t r = 0; r < n; ++r) {
    double acc = b[r];
    double diag = 0.0;
    for (sparse::offset_t k = l.row_ptr[r]; k < l.row_ptr[r + 1]; ++k) {
      const auto c = static_cast<std::size_t>(l.col_idx[static_cast<std::size_t>(k)]);
      const double v = l.values[static_cast<std::size_t>(k)];
      if (c == r)
        diag = v;
      else
        acc -= v * x[c];
    }
    if (diag == 0.0) throw std::domain_error("sptrsv: zero diagonal");
    x[r] = acc / diag;
  }
}

double sptrsv_residual(const sparse::Csr& l, std::span<const double> x,
                       std::span<const double> b) {
  double worst = 0.0;
  for (sparse::index_t r = 0; r < l.rows; ++r) {
    double acc = 0.0;
    for (sparse::offset_t k = l.row_ptr[static_cast<std::size_t>(r)];
         k < l.row_ptr[static_cast<std::size_t>(r) + 1]; ++k)
      acc += l.values[static_cast<std::size_t>(k)] *
             x[static_cast<std::size_t>(l.col_idx[static_cast<std::size_t>(k)])];
    worst = std::max(worst, std::abs(acc - b[static_cast<std::size_t>(r)]));
  }
  return worst;
}

LocalityModel sptrsv_model(const sim::Platform& platform, const SptrsvShape& shape) {
  LocalityModel m;
  const double rows = std::max(shape.rows, 1.0);
  const double nnz = std::max(shape.nnz, 1.0);
  m.flops = nnz + 2.0 * rows;  // same arithmetic intensity as SpMV (Table 2)

  const double stream_bytes = 12.0 * nnz + 12.0 * rows;
  const double x_bytes = 8.0 * rows;
  const double gather_pool = 32.0 * nnz * (1.0 - shape.locality);
  m.total_bytes = stream_bytes + 8.0 * nnz;
  m.footprint = stream_bytes + x_bytes + 8.0 * rows;

  const double footprint = m.footprint;
  m.miss_bytes = [stream_bytes, x_bytes, gather_pool, footprint](double capacity) {
    const double stream_miss = stream_bytes * capacity_miss_fraction(footprint, capacity);
    const double x_miss = gather_pool * capacity_miss_fraction(x_bytes, capacity * 0.5);
    return stream_miss + x_miss;
  };

  // The dependency chains cap both compute efficiency and — crucially —
  // memory-level parallelism: only rows of the current level can issue
  // misses concurrently. This is what makes SpTRSV latency-bound and lets
  // MCDRAM's higher access latency *hurt* (paper section 4.2.2).
  const double par = std::max(shape.avg_parallelism, 1.0);
  const double core_fill = std::min(1.0, par / platform.cores);
  m.compute_efficiency = 0.30 * core_fill + 0.004;
  m.mlp_max = std::clamp(par * 0.5, 2.0, 12.0 * platform.cores);

  // Every level boundary is a barrier across the solver's threads; on the
  // 256-thread KNL that costs microseconds per level, which is what makes
  // deep-level inputs so slow there (and why the paper's SpTRSV absolute
  // numbers sit far below SpMV's despite equal intensity).
  const double levels = shape.levels > 0.0 ? shape.levels : rows / par;
  const double barrier_seconds = platform.cores >= 32 ? 4.0e-6 : 0.5e-6;
  m.fixed_seconds = levels * barrier_seconds;
  return m;
}

double estimate_sptrsv_parallelism(const sparse::MatrixDescriptor& d) {
  const double rows = static_cast<double>(d.rows);
  switch (d.family) {
    case sparse::Family::kBanded:
    case sparse::Family::kTridiagPerturbed:
      // Adjacent-row dependencies: essentially sequential chains.
      return 2.0;
    case sparse::Family::kPoisson2D:
      // Wavefront over a sqrt(n) x sqrt(n) grid: ~2·grid levels.
      return std::max(1.0, std::sqrt(rows) / 2.0);
    case sparse::Family::kPoisson3D:
      // Wavefront over grid³: levels ≈ 3·grid, width ≈ n / (3·grid).
      return std::max(1.0, rows / (3.0 * std::cbrt(rows)));
    case sparse::Family::kBlockDiagonal:
      // Blocks are independent; each block is a short chain.
      return std::max(1.0, rows / 64.0);
    case sparse::Family::kArrow:
      // Head rows serialize, the long tail is one wide level.
      return std::max(1.0, rows / 8.0);
    case sparse::Family::kRmat:
      // Power-law DAGs are shallow: O(log n) levels.
      return std::max(1.0, rows / (4.0 * std::log2(std::max(rows, 2.0))));
    case sparse::Family::kRandomUniform:
      // Random lower-triangular fill: depth grows ~ log n as well, but a
      // higher average degree deepens chains somewhat.
      return std::max(1.0, rows / (8.0 * std::log2(std::max(rows, 2.0))));
  }
  return 1.0;
}

}  // namespace opm::kernels
