#pragma once

#include <string>
#include <vector>

/// Kernel characteristics — the executable form of the paper's Table 2.
///
/// Each spec records the operation/byte-count formulas the paper uses to
/// place kernels on the roofline (Figures 4 and 5), plus the metadata
/// columns of Table 2 (dwarf class, complexity, optimal thread counts).
namespace opm::kernels {

/// Scale variables appearing in the Table 2 formulas.
struct ProblemSize {
  double n = 0.0;    ///< matrix order / vector length / grid edge
  double nnz = 0.0;  ///< nonzeros (sparse kernels)
  double m = 0.0;    ///< rows (sparse kernels)
};

struct KernelSpec {
  std::string name;            ///< "GEMM", "SpMV", ...
  std::string implementation;  ///< the paper's chosen code ("Plasma", "CSR5", ...)
  std::string dwarf;           ///< Berkeley dwarf class
  std::string category;        ///< "Dense", "Sparse", "Others"
  std::string complexity;      ///< e.g. "O(n^3)"
  std::string ops_formula;     ///< e.g. "2n^3"
  std::string bytes_formula;   ///< e.g. "32n^2"
  int threads_broadwell = 0;   ///< optimal thread count used by the paper
  int threads_knl = 0;

  double (*ops)(const ProblemSize&) = nullptr;
  double (*bytes)(const ProblemSize&) = nullptr;

  /// Flop-to-byte ratio at the given problem size.
  double arithmetic_intensity(const ProblemSize& p) const { return ops(p) / bytes(p); }
};

/// All eight kernel specs, in Table 2 order.
const std::vector<KernelSpec>& all_kernel_specs();

/// Lookup by name; throws std::out_of_range when unknown.
const KernelSpec& kernel_spec(const std::string& name);

/// The problem-size assumption of the paper's Figure 5 captions:
/// n = 1024, nnz = 1024, M = 32.
ProblemSize figure5_problem();

}  // namespace opm::kernels
