#include "kernels/spec.hpp"

#include <cmath>
#include <stdexcept>

namespace opm::kernels {

namespace {
// Table 2 formulas, verbatim.
double gemm_ops(const ProblemSize& p) { return 2.0 * p.n * p.n * p.n; }
double gemm_bytes(const ProblemSize& p) { return 32.0 * p.n * p.n; }
double chol_ops(const ProblemSize& p) { return p.n * p.n * p.n / 3.0; }
double chol_bytes(const ProblemSize& p) { return 8.0 * p.n * p.n; }
double spmv_ops(const ProblemSize& p) { return p.nnz + 2.0 * p.m; }
double spmv_bytes(const ProblemSize& p) { return 12.0 * p.nnz + 20.0 * p.m; }
double sptrans_ops(const ProblemSize& p) { return p.nnz * std::log2(std::max(p.nnz, 2.0)); }
double sptrans_bytes(const ProblemSize& p) { return 24.0 * p.nnz + 8.0 * p.m; }
double sptrsv_ops(const ProblemSize& p) { return p.nnz + 2.0 * p.m; }
double sptrsv_bytes(const ProblemSize& p) { return 12.0 * p.nnz + 20.0 * p.m; }
double fft_ops(const ProblemSize& p) { return 5.0 * p.n * std::log2(std::max(p.n, 2.0)); }
double fft_bytes(const ProblemSize& p) { return 48.0 * p.n; }
double stencil_ops(const ProblemSize& p) { return 61.0 * p.n * p.n; }
double stencil_bytes(const ProblemSize& p) { return 8.0 * p.n * p.n; }
double stream_ops(const ProblemSize& p) { return 2.0 * p.n; }
double stream_bytes(const ProblemSize& p) { return 32.0 * p.n; }
}  // namespace

const std::vector<KernelSpec>& all_kernel_specs() {
  static const std::vector<KernelSpec> specs = {
      {"GEMM", "Plasma", "Dense Linear Algebra", "Dense", "O(n^3)", "2n^3", "32n^2", 4, 64,
       gemm_ops, gemm_bytes},
      {"Cholesky", "Plasma", "Dense Linear Algebra", "Dense", "O(n^3)", "n^3/3", "8n^2", 4, 64,
       chol_ops, chol_bytes},
      {"SpMV", "CSR5", "Sparse Linear Algebra", "Sparse", "O(nnz)", "nnz + 2M", "12nnz + 20M",
       8, 256, spmv_ops, spmv_bytes},
      {"SpTRANS", "Scan/MergeTrans", "Sparse Linear Algebra", "Sparse", "O(nnz log nnz)",
       "nnz log nnz", "24nnz + 8M", 4, 64, sptrans_ops, sptrans_bytes},
      {"SpTRSV", "P2P-SpTRSV", "Sparse Linear Algebra", "Sparse", "O(nnz)", "nnz + 2M",
       "12nnz + 20M", 8, 256, sptrsv_ops, sptrsv_bytes},
      {"FFT", "FFTW", "Spectral Methods", "Others", "O(n log n)", "5n log n", "48n", 8, 256,
       fft_ops, fft_bytes},
      {"Stencil", "YASK", "Structured Grid", "Others", "O(n^2)", "61n^2", "8n^2", 8, 256,
       stencil_ops, stencil_bytes},
      {"Stream", "Stream", "N/A", "Others", "O(1)", "2n", "32n", 8, 256, stream_ops,
       stream_bytes},
  };
  return specs;
}

const KernelSpec& kernel_spec(const std::string& name) {
  for (const auto& s : all_kernel_specs())
    if (s.name == name) return s;
  throw std::out_of_range("unknown kernel: " + name);
}

ProblemSize figure5_problem() { return {.n = 1024.0, .nnz = 1024.0, .m = 32.0}; }

}  // namespace opm::kernels
