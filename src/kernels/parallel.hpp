#pragma once

#include <span>

#include "dense/matrix.hpp"
#include "kernels/sptrsv.hpp"
#include "sparse/formats.hpp"
#include "util/thread_pool.hpp"

/// Parallel variants of the kernels — the fork-join structure the paper's
/// codes use with their Table 2 thread counts (4/8 on Broadwell, 64/256
/// on KNL). Each variant is bit-identical to its serial counterpart for
/// any worker count (partitioning never reorders floating-point sums
/// within a row/tile/cell).
///
/// The pool is work-stealing and exception-safe: a size-validation error
/// thrown by a kernel body propagates out of the forking call (it no
/// longer terminates the process), and these variants may be invoked from
/// inside another parallel region (nested fork-join is supported).
namespace opm::kernels {

/// Row-parallel CSR SpMV: rows are independent.
void spmv_csr_parallel(const sparse::Csr& a, std::span<const double> x, std::span<double> y,
                       util::ThreadPool& pool);

/// Tile-parallel GEMM: each (i, j) tile of C is owned by one task that
/// runs the full k loop, so no two tasks touch the same C elements.
void gemm_tiled_parallel(const dense::Matrix& a, const dense::Matrix& b, dense::Matrix& c,
                         std::size_t tile, util::ThreadPool& pool);

/// Element-parallel TRIAD.
void stream_triad_parallel(std::span<double> a, std::span<const double> b,
                           std::span<const double> c, double alpha, util::ThreadPool& pool);

/// Level-parallel SpTRSV: rows within a level are independent; levels
/// form the barriers (exactly what the level-set schedule encodes).
void sptrsv_levelset_parallel(const sparse::Csr& l, const LevelSchedule& schedule,
                              std::span<const double> b, std::span<double> x,
                              util::ThreadPool& pool);

/// Synchronization-sparsified SpTRSV in the style of the paper's SpMP
/// solver (Park et al.) and the sync-free algorithm (Liu et al.,
/// Euro-Par'16): instead of level barriers, each row carries an
/// in-degree counter of unresolved dependencies; solving a row decrements
/// its dependents and releases the ones reaching zero onto the worklist.
/// This executes the point-to-point dependency graph directly.
void sptrsv_p2p(const sparse::Csr& l, std::span<const double> b, std::span<double> x);

}  // namespace opm::kernels
