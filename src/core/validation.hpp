#pragma once

#include <string>
#include <vector>

#include "kernels/model.hpp"
#include "sim/platform.hpp"
#include "trace/reuse.hpp"

/// Model-vs-trace validation as a public API.
///
/// The bench sweeps run entirely on the analytical models; their ground
/// truth is exact reuse-distance measurement of the instrumented kernels.
/// This module turns the test suite's cross-checking into a reusable
/// report: for every capacity boundary of a platform, compare the model's
/// miss curve against the measured one and flag disagreements. The
/// `validation_report` bench prints this for every kernel so a reader can
/// audit how much to trust each figure.
namespace opm::core {

struct ValidationRow {
  std::string boundary;       ///< tier name whose cumulative capacity is probed
  double capacity_bytes = 0;  ///< cumulative capacity above-and-including it
  double measured_bytes = 0;  ///< reuse-distance miss bytes at that capacity
  double modeled_bytes = 0;   ///< model.miss_bytes at that capacity
  /// modeled/measured, 1.0 = perfect; <1 model optimistic, >1 pessimistic.
  double ratio = 0.0;
};

struct ValidationReport {
  std::vector<ValidationRow> rows;
  /// max(ratio, 1/ratio) over all rows — the worst multiplicative error.
  double worst_factor = 1.0;
};

/// Compares the measured miss curve of an instrumented run against a
/// kernel model at every cumulative tier capacity of `platform`.
/// `iterations` scales the model's traffic to match the number of times
/// the instrumented kernel was executed into `measured`.
ValidationReport validate_model(const trace::ReuseDistanceAnalyzer& measured,
                                const kernels::LocalityModel& model,
                                const sim::Platform& platform, double iterations = 1.0);

/// Formats a report as an aligned text table.
std::string format_report(const ValidationReport& report);

}  // namespace opm::core
