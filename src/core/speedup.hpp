#pragma once

#include <span>
#include <string>
#include <vector>

/// Speedup aggregation — the statistics columns of the paper's Tables 4
/// and 5.
///
/// Given paired per-input throughputs (baseline vs OPM configuration), the
/// summary reports the best throughput of each side, the average and
/// maximum absolute performance gap, and the average and maximum speedup —
/// exactly the columns the paper tabulates.
namespace opm::core {

struct SpeedupSummary {
  double best_base_gflops = 0.0;
  double best_opm_gflops = 0.0;
  double avg_gap_gflops = 0.0;  ///< mean of (opm - base), signed
  double max_gap_gflops = 0.0;  ///< max of (opm - base)
  double avg_speedup = 0.0;     ///< mean of (opm / base)
  double max_speedup = 0.0;
  std::size_t inputs = 0;

  /// Exact comparison, used by the parallel-vs-serial determinism tests.
  bool operator==(const SpeedupSummary&) const = default;
};

/// Summarizes paired samples; the two spans must be equal length and the
/// baseline entries strictly positive.
SpeedupSummary summarize_speedup(std::span<const double> base_gflops,
                                 std::span<const double> opm_gflops);

/// One formatted row of Table 4/5 style output.
std::string format_summary_row(const std::string& kernel, const SpeedupSummary& s);

}  // namespace opm::core
