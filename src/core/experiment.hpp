#pragma once

#include <string>
#include <vector>

#include "core/speedup.hpp"
#include "kernels/model.hpp"
#include "sim/platform.hpp"
#include "sparse/collection.hpp"

/// Shared experiment sweeps — the canonical input sets behind every figure
/// and both summary tables, so that all bench harnesses report consistent
/// numbers.
///
/// Dense kernels sweep (matrix order, tile size) grids (appendix A.2.1/2);
/// sparse kernels sweep the 968-matrix synthetic suite; Stream/Stencil/FFT
/// sweep footprints. Everything runs through the analytical models and the
/// timing model — the trace-driven simulator validates those models in the
/// test suite.
///
/// Every sweep here fans out over the process-wide work-stealing pool
/// (core/sweep.hpp); results are written by index, so output is
/// bit-identical for any core::set_sweep_workers() setting, including the
/// serial workers == 0 mode.
namespace opm::core {

/// Which kernel a sweep is for.
enum class KernelId { kGemm, kCholesky, kSpmv, kSptrans, kSptrsv, kFft, kStencil, kStream };
const char* to_string(KernelId id);

/// One sampled point of any sweep.
struct SweepPoint {
  double x = 0.0;          ///< primary axis (matrix order / footprint bytes)
  double y = 0.0;          ///< secondary axis (tile size; 0 when unused)
  double gflops = 0.0;
  double footprint = 0.0;  ///< bytes
  double rows = 0.0;       ///< sparse sweeps: matrix rows
  double nnz = 0.0;        ///< sparse sweeps: nonzeros
  int input_id = -1;       ///< sparse sweeps: suite member id

  /// Exact comparison — the sweeps guarantee bit-identical output for any
  /// worker count, and the determinism tests hold them to it.
  bool operator==(const SweepPoint&) const = default;
};

// ---------------------------------------------------------------- requests --
//
// Canonical request structs are THE sweep API: designated initializers,
// defaults matching the paper's appendix A.2 configuration, operator==,
// and a stable canonical serialization — so each struct, combined with the
// platform (and suite) fingerprints and the cache version, IS the
// result-cache key.

/// Dense (n, nb) grid sweep request for GEMM or Cholesky. Defaults are the
/// appendix A.2.1 Broadwell grid; KNL harnesses widen to n_hi = 32000.
struct DenseSweepRequest {
  KernelId kernel = KernelId::kGemm;
  double n_lo = 256.0;
  double n_hi = 16128.0;
  double n_step = 512.0;
  double nb_lo = 128.0;
  double nb_hi = 4096.0;
  double nb_step = 128.0;

  bool operator==(const DenseSweepRequest&) const = default;
};

/// Sparse-suite sweep request. `merge_based` selects the MergeTrans
/// variant for SpTRANS (the paper's KNL configuration); ignored by the
/// other kernels. The suite itself stays a separate argument — its
/// descriptors are fingerprinted into the cache key.
struct SparseSweepRequest {
  KernelId kernel = KernelId::kSpmv;
  bool merge_based = false;

  bool operator==(const SparseSweepRequest&) const = default;
};

/// Footprint sweep request for Stream / Stencil / FFT; bounds in bytes,
/// log-spaced points. Defaults are the appendix A.2.8 Broadwell Stream
/// range (16 KB up to 2^24 elements x 24 bytes).
struct FootprintSweepRequest {
  KernelId kernel = KernelId::kStream;
  double fp_lo = 16.0 * 1024.0;
  double fp_hi = 16777216.0 * 24.0;
  std::size_t points = 64;

  bool operator==(const FootprintSweepRequest&) const = default;
};

/// Canonical, bit-exact serializations (doubles rendered as C99 hex
/// floats). Equal requests serialize identically; any field change
/// changes the text. This is what gets hashed into the cache key.
std::string serialize(const DenseSweepRequest& req);
std::string serialize(const SparseSweepRequest& req);
std::string serialize(const FootprintSweepRequest& req);

/// Cache keys: fingerprint of (cache version, request serialization,
/// platform spec[, suite descriptors]). Exposed so tests can pin the
/// sensitivity contract: any field change yields a distinct key.
util::Digest128 sweep_cache_key(const sim::Platform& platform, const DenseSweepRequest& req);
util::Digest128 sweep_cache_key(const sim::Platform& platform, const SparseSweepRequest& req,
                                const sparse::SyntheticCollection& suite);
util::Digest128 sweep_cache_key(const sim::Platform& platform,
                                const FootprintSweepRequest& req);

// ------------------------------------------------------------------ sweeps --

/// Dense (n, nb) grid sweep for GEMM or Cholesky (appendix A.2.1).
std::vector<SweepPoint> sweep_dense(const sim::Platform& platform,
                                    const DenseSweepRequest& req);

/// Sparse sweep over a synthetic suite.
std::vector<SweepPoint> sweep_sparse(const sim::Platform& platform,
                                     const SparseSweepRequest& req,
                                     const sparse::SyntheticCollection& suite);

/// Footprint sweep for Stream / Stencil / FFT.
std::vector<SweepPoint> sweep_footprint_kernel(const sim::Platform& platform,
                                               const FootprintSweepRequest& req);

/// The canonical per-kernel input set for the summary tables: returns the
/// predicted GFlop/s for every input of `kernel` on `platform` (paired
/// across platforms because inputs are deterministic).
std::vector<double> table_inputs_gflops(const sim::Platform& platform, KernelId kernel,
                                        const sparse::SyntheticCollection& suite);

/// Table 4: per-kernel summary of eDRAM-on vs eDRAM-off on Broadwell.
struct KernelSummary {
  KernelId kernel = KernelId::kGemm;
  SpeedupSummary summary;

  bool operator==(const KernelSummary&) const = default;
};
std::vector<KernelSummary> table4_edram(const sparse::SyntheticCollection& suite);

/// Table 5: per-kernel, per-mode summaries of MCDRAM modes vs DDR on KNL.
struct ModeSummary {
  KernelId kernel = KernelId::kGemm;
  SpeedupSummary flat;
  SpeedupSummary cache;
  SpeedupSummary hybrid;

  bool operator==(const ModeSummary&) const = default;
};
std::vector<ModeSummary> table5_mcdram(const sparse::SyntheticCollection& suite);

/// Average power/energy per kernel for the Figure 26/27 reproductions:
/// mean package and DDR power across the kernel's canonical inputs.
struct PowerRow {
  KernelId kernel = KernelId::kGemm;
  double package_watts = 0.0;
  double dram_watts = 0.0;

  bool operator==(const PowerRow&) const = default;
};
std::vector<PowerRow> power_rows(const sim::Platform& platform,
                                 const sparse::SyntheticCollection& suite);

}  // namespace opm::core
