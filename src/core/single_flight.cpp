#include "core/single_flight.hpp"

#include <atomic>
#include <unordered_map>
#include <utility>

#include "util/mutex.hpp"

namespace opm::core {

struct SingleFlight::Flight {
  util::Mutex mutex;
  util::CondVar cv;
  bool done OPM_GUARDED_BY(mutex) = false;
  /// Set before done flips; nullptr = the leader failed.
  Payload payload OPM_GUARDED_BY(mutex);
};

namespace {
struct DigestHash {
  std::size_t operator()(const util::Digest128& d) const {
    return static_cast<std::size_t>(d.lo ^ (d.hi * 0x9e3779b97f4a7c15ull));
  }
};
}  // namespace

struct SingleFlight::Impl {
  util::Mutex mutex;  // guards the key table
  std::unordered_map<util::Digest128, std::shared_ptr<Flight>, DigestHash> flights
      OPM_GUARDED_BY(mutex);

  std::atomic<std::uint64_t> begun{0}, coalesced{0}, failures{0};

  /// Retires `flight`'s key (if it is still the registered flight) and
  /// publishes the outcome to every waiter.
  void finish(const std::shared_ptr<Flight>& flight, Payload payload)
      OPM_EXCLUDES(mutex) {
    {
      util::MutexLock lock(mutex);
      for (auto it = flights.begin(); it != flights.end(); ++it) {
        if (it->second == flight) {
          flights.erase(it);
          break;
        }
      }
    }
    Flight& f = *flight;
    {
      util::MutexLock lock(f.mutex);
      f.payload = std::move(payload);
      f.done = true;
    }
    f.cv.notify_all();
  }
};

SingleFlight::SingleFlight() : impl_(new Impl) {}
SingleFlight::~SingleFlight() { delete impl_; }

std::shared_ptr<SingleFlight::Flight> SingleFlight::try_begin(const util::Digest128& key,
                                                              bool* leader) {
  util::MutexLock lock(impl_->mutex);
  auto it = impl_->flights.find(key);
  if (it != impl_->flights.end()) {
    if (leader) *leader = false;
    impl_->coalesced.fetch_add(1, std::memory_order_relaxed);
    return it->second;
  }
  auto flight = std::make_shared<Flight>();
  impl_->flights.emplace(key, flight);
  impl_->begun.fetch_add(1, std::memory_order_relaxed);
  if (leader) *leader = true;
  return flight;
}

SingleFlight::Payload SingleFlight::share(const std::shared_ptr<Flight>& flight) {
  Flight& f = *flight;
  util::MutexLock lock(f.mutex);
  while (!f.done) f.cv.wait(f.mutex);
  return f.payload;
}

void SingleFlight::complete(const std::shared_ptr<Flight>& flight, Payload payload) {
  impl_->finish(flight, std::move(payload));
}

void SingleFlight::fail(const std::shared_ptr<Flight>& flight) {
  impl_->failures.fetch_add(1, std::memory_order_relaxed);
  impl_->finish(flight, nullptr);
}

SingleFlight::Stats SingleFlight::stats() const {
  return {impl_->begun.load(std::memory_order_relaxed),
          impl_->coalesced.load(std::memory_order_relaxed),
          impl_->failures.load(std::memory_order_relaxed)};
}

std::size_t SingleFlight::in_flight() const {
  util::MutexLock lock(impl_->mutex);
  return impl_->flights.size();
}

}  // namespace opm::core
