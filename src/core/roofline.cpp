#include "core/roofline.hpp"

#include <algorithm>

namespace opm::core {

double roofline_attainable(double ai, double peak_flops, double bandwidth) {
  // Degenerate roofs clamp to zero: a machine with no compute peak or no
  // memory bandwidth attains nothing, and a non-positive intensity carries
  // no flops to attain.
  if (ai <= 0.0 || peak_flops <= 0.0 || bandwidth <= 0.0) return 0.0;
  return std::min(peak_flops, ai * bandwidth);
}

MeasuredPlacement place_measured(const RooflineFigure& figure, const std::string& kernel,
                                 double flops, double measured_bytes) {
  MeasuredPlacement out;
  out.kernel = kernel;
  out.flops = std::max(flops, 0.0);
  out.measured_bytes = std::max(measured_bytes, 0.0);
  if (out.measured_bytes > 0.0 && out.flops > 0.0) {
    out.intensity = out.flops / out.measured_bytes;
  } else {
    // No measured traffic (or no flops): the kernel never leaves the core
    // caches, so no memory roof constrains it. Leave intensity at zero and
    // classify as compute-bound under both roofs.
    out.intensity = 0.0;
  }
  const double opm_bw =
      figure.opm_bandwidth > 0.0 ? figure.opm_bandwidth : figure.ddr_bandwidth;
  if (out.intensity > 0.0) {
    out.opm_attainable_gflops =
        roofline_attainable(out.intensity, figure.dp_peak_flops, opm_bw) / 1e9;
    out.ddr_attainable_gflops =
        roofline_attainable(out.intensity, figure.dp_peak_flops, figure.ddr_bandwidth) / 1e9;
    out.memory_bound_opm =
        opm_bw > 0.0 && out.intensity < figure.dp_peak_flops / opm_bw;
    out.memory_bound_ddr = figure.ddr_bandwidth > 0.0 &&
                           out.intensity < figure.dp_peak_flops / figure.ddr_bandwidth;
  } else {
    out.opm_attainable_gflops = std::max(figure.dp_peak_flops, 0.0) / 1e9;
    out.ddr_attainable_gflops = out.opm_attainable_gflops;
    out.memory_bound_opm = false;
    out.memory_bound_ddr = false;
  }
  return out;
}

double RooflineFigure::ridge_point_opm() const {
  return opm_bandwidth > 0.0 ? dp_peak_flops / opm_bandwidth : 0.0;
}

double RooflineFigure::ridge_point_ddr() const {
  return ddr_bandwidth > 0.0 ? dp_peak_flops / ddr_bandwidth : 0.0;
}

RooflineFigure build_roofline(const sim::Platform& platform) {
  RooflineFigure fig;
  fig.platform = platform.name + " (" + platform.mode_label + ")";
  fig.dp_peak_flops = platform.dp_peak_flops;
  fig.sp_peak_flops = platform.sp_peak_flops;
  fig.ddr_bandwidth = platform.ddr().bandwidth;

  // The OPM ceiling: a non-standard tier's bandwidth (eDRAM L4 / MCDRAM
  // cache) or an on-package flat device's.
  fig.opm_bandwidth = 0.0;
  for (const auto& tier : platform.tiers)
    if (tier.kind != sim::TierKind::kStandard) fig.opm_bandwidth = tier.bandwidth;
  for (const auto& dev : platform.devices)
    if (dev.on_package) fig.opm_bandwidth = std::max(fig.opm_bandwidth, dev.bandwidth);

  const kernels::ProblemSize p = kernels::figure5_problem();
  for (const auto& spec : kernels::all_kernel_specs()) {
    RooflinePlacement placement;
    placement.kernel = spec.name;
    placement.intensity = spec.arithmetic_intensity(p);
    placement.ddr_only_gflops =
        roofline_attainable(placement.intensity, fig.dp_peak_flops, fig.ddr_bandwidth) / 1e9;
    const double opm_bw = fig.opm_bandwidth > 0.0 ? fig.opm_bandwidth : fig.ddr_bandwidth;
    placement.with_opm_gflops =
        roofline_attainable(placement.intensity, fig.dp_peak_flops, opm_bw) / 1e9;
    fig.placements.push_back(placement);
  }
  return fig;
}

std::vector<CarmRoof> cache_aware_roofs(const sim::Platform& platform) {
  std::vector<CarmRoof> out;
  for (const auto& tier : platform.tiers) {
    out.push_back({.name = tier.geometry.name,
                   .bandwidth = tier.bandwidth,
                   .ridge_point = tier.bandwidth > 0.0
                                      ? platform.dp_peak_flops / tier.bandwidth
                                      : 0.0});
  }
  for (const auto& dev : platform.devices) {
    out.push_back({.name = dev.name,
                   .bandwidth = dev.bandwidth,
                   .ridge_point =
                       dev.bandwidth > 0.0 ? platform.dp_peak_flops / dev.bandwidth : 0.0});
  }
  return out;
}

}  // namespace opm::core
