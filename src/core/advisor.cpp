#include "core/advisor.hpp"

#include "sim/power.hpp"

namespace opm::core {

McdramRecommendation advise_mcdram(const sim::Platform& knl_flat, const AppProfile& in) {
  McdramRecommendation rec;
  double mcdram_capacity = 0.0;
  for (const auto& dev : knl_flat.devices)
    if (dev.on_package) mcdram_capacity += static_cast<double>(dev.capacity);
  for (const auto& tier : knl_flat.tiers)
    if (tier.kind == sim::TierKind::kMemorySide)
      mcdram_capacity += static_cast<double>(tier.geometry.capacity);
  if (mcdram_capacity <= 0.0) mcdram_capacity = 16.0 * 1024 * 1024 * 1024.0;
  const double hybrid_cache = mcdram_capacity / 2.0;

  // Clamp malformed profiles so a rule always fires instead of the rules
  // silently reasoning about an impossible hot set.
  AppProfile app = in;
  std::string warning;
  if (app.footprint_bytes <= 0.0) {
    app.footprint_bytes = 0.0;
    app.hot_set_bytes = 0.0;
    warning = " [warning: non-positive footprint; treated as zero, which trivially "
              "fits MCDRAM]";
  } else if (app.hot_set_bytes > app.footprint_bytes) {
    app.hot_set_bytes = app.footprint_bytes;
    warning = " [warning: hot set exceeded footprint; clamped hot set to footprint]";
  }
  const auto with_warning = [&](McdramRecommendation r) {
    r.reason += warning;
    return r;
  };

  if (app.footprint_bytes <= mcdram_capacity) {
    rec.mode = sim::McdramMode::kFlat;
    rec.reason = "data fits MCDRAM: flat mode is all hits with no tag-check overhead "
                 "(guideline II)";
    return with_warning(rec);
  }
  if (app.latency_bound) {
    rec.mode = sim::McdramMode::kOff;
    rec.reason = "latency-bound beyond MCDRAM capacity: MCDRAM's access latency exceeds "
                 "DDR's, so DDR wins (section 4.2.2)";
    return with_warning(rec);
  }
  if (app.hot_set_bytes <= hybrid_cache) {
    rec.mode = sim::McdramMode::kHybrid;
    rec.reason = "data exceeds MCDRAM but the hot set fits the hybrid cache half: hybrid "
                 "beats both flat and cache (guideline III)";
    return with_warning(rec);
  }
  rec.mode = sim::McdramMode::kCache;
  rec.reason = "data exceeds MCDRAM and the hot set exceeds the hybrid cache half: the "
               "hardware-managed cache tracks the moving hotspot (guideline IV)";
  return with_warning(rec);
}

EdramRecommendation advise_edram(const sim::Platform& broadwell_on, const AppProfile& app) {
  EdramRecommendation rec;
  const EffectiveRegion per = edram_effective_region(broadwell_on);
  // eDRAM never degraded performance in the evaluation ("we have not
  // observed worse performance using eDRAM"), so performance users keep
  // it on; the interesting question is whether it actually helps.
  rec.enable_for_performance = true;
  rec.energy_ratio =
      sim::opm_energy_ratio(app.expected_perf_gain, app.expected_power_increase);
  rec.enable_for_energy = rec.energy_ratio < 1.0;
  if (per.contains(app.footprint_bytes)) {
    rec.reason = "footprint falls inside the eDRAM performance-effective region; expect "
                 "real gains" +
                 std::string(rec.enable_for_energy ? " and net energy savings (Eq. 1)"
                                                   : "; Eq. 1 says the gain does not cover "
                                                     "the extra power");
  } else {
    rec.reason = "footprint outside the eDRAM effective region: no slowdown, but the "
                 "extra ~8.6% power is not recouped";
  }
  return rec;
}

EffectiveRegion edram_effective_region(const sim::Platform& platform) {
  EffectiveRegion out;
  double below = 0.0;
  for (const auto& tier : platform.tiers) {
    if (tier.kind == sim::TierKind::kVictim) {
      out.lo_bytes = below;
      out.hi_bytes = below + static_cast<double>(tier.geometry.capacity);
      return out;
    }
    below += static_cast<double>(tier.geometry.capacity);
  }
  return out;
}

}  // namespace opm::core
