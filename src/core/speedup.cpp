#include "core/speedup.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "util/format.hpp"

namespace opm::core {

SpeedupSummary summarize_speedup(std::span<const double> base_gflops,
                                 std::span<const double> opm_gflops) {
  if (base_gflops.size() != opm_gflops.size())
    throw std::invalid_argument("summarize_speedup: span length mismatch");
  SpeedupSummary s;
  s.inputs = base_gflops.size();
  if (s.inputs == 0) return s;

  double gap_sum = 0.0;
  double speedup_sum = 0.0;
  s.max_gap_gflops = -1e300;
  for (std::size_t i = 0; i < base_gflops.size(); ++i) {
    const double base = base_gflops[i];
    const double opm = opm_gflops[i];
    if (base <= 0.0) throw std::invalid_argument("summarize_speedup: non-positive baseline");
    s.best_base_gflops = std::max(s.best_base_gflops, base);
    s.best_opm_gflops = std::max(s.best_opm_gflops, opm);
    const double gap = opm - base;
    gap_sum += gap;
    s.max_gap_gflops = std::max(s.max_gap_gflops, gap);
    const double speedup = opm / base;
    speedup_sum += speedup;
    s.max_speedup = std::max(s.max_speedup, speedup);
  }
  s.avg_gap_gflops = gap_sum / static_cast<double>(s.inputs);
  s.avg_speedup = speedup_sum / static_cast<double>(s.inputs);
  return s;
}

std::string format_summary_row(const std::string& kernel, const SpeedupSummary& s) {
  std::ostringstream os;
  os << util::pad(kernel, 10) << util::pad(util::format_fixed(s.best_base_gflops, 1), 12)
     << util::pad(util::format_fixed(s.best_opm_gflops, 1), 12)
     << util::pad(util::format_fixed(s.avg_gap_gflops, 2), 12)
     << util::pad(util::format_fixed(s.max_gap_gflops, 2), 12)
     << util::pad(util::format_speedup(s.avg_speedup), 10)
     << util::pad(util::format_speedup(s.max_speedup), 10);
  return os.str();
}

}  // namespace opm::core
