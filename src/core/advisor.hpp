#pragma once

#include <string>

#include "sim/platform.hpp"

/// The optimization-guideline engine — the paper's Section 6 as code.
///
/// Given what a user knows about their application (total data size, hot
/// working-set size, whether it is latency- or bandwidth-bound) and their
/// objective (performance vs energy), the advisor emits the mode the
/// paper's guidelines recommend, with the reasoning attached.
namespace opm::core {

/// What the user knows about the application.
struct AppProfile {
  double footprint_bytes = 0.0;      ///< total data size
  double hot_set_bytes = 0.0;        ///< most-frequently-used footprint
  bool latency_bound = false;        ///< low MLP (e.g. SpTRSV-like)
  double expected_perf_gain = 0.0;   ///< fractional gain from the OPM (P)
  double expected_power_increase = 0.0;  ///< fractional power cost (W)
};

/// MCDRAM recommendation per the Section 6 rules.
struct McdramRecommendation {
  sim::McdramMode mode = sim::McdramMode::kCache;
  std::string reason;
};

/// Applies rules I–IV of Section 6 for a KNL-like platform:
///   - data fits MCDRAM -> flat (all hits, no tag overhead);
///   - data larger than MCDRAM but hot set fits the hybrid cache half ->
///     hybrid (flat partition for the bulk, cache for the hot set);
///   - data larger than MCDRAM with a big hot set -> cache;
///   - latency-bound with data beyond MCDRAM -> DDR can win (MCDRAM's
///     access latency exceeds DDR's).
/// Malformed profiles are clamped rather than silently misrouted: a
/// non-positive footprint is treated as zero and a hot set larger than the
/// footprint is clamped to it, with a warning appended to `reason`.
McdramRecommendation advise_mcdram(const sim::Platform& knl_flat, const AppProfile& app);

/// eDRAM recommendation per the Section 6 eDRAM discussion.
struct EdramRecommendation {
  bool enable_for_performance = false;
  bool enable_for_energy = false;
  double energy_ratio = 1.0;  ///< Eq. 1: E_with / E_without
  std::string reason;
};

/// eDRAM never hurts performance, so the performance answer keys on
/// whether the data can exercise the eDRAM performance-effective region;
/// the energy answer applies Eq. 1.
EdramRecommendation advise_edram(const sim::Platform& broadwell_on, const AppProfile& app);

/// The eDRAM performance-effective region (PER) on a platform: footprints
/// between the last on-chip cache capacity and the eDRAM capacity (both in
/// bytes). Returns {0, 0} when the platform has no victim tier.
struct EffectiveRegion {
  double lo_bytes = 0.0;
  double hi_bytes = 0.0;
  bool contains(double fp) const { return fp > lo_bytes && fp <= hi_bytes; }
};
EffectiveRegion edram_effective_region(const sim::Platform& platform);

}  // namespace opm::core
