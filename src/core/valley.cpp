#include "core/valley.hpp"

#include <algorithm>
#include <cmath>

namespace opm::core {

double valley_hit_rate(const ValleyParams& p, double t) {
  const double aggregate = t * p.per_thread_ws;
  if (aggregate <= 0.0) return 1.0;
  return std::min(1.0, p.cache_bytes / aggregate);
}

double valley_throughput(const ValleyParams& p, double t) {
  const double hit = valley_hit_rate(p, t);
  const double miss = 1.0 - hit;

  // Per-thread compute demand expressed as bytes/s, then the miss stream
  // it generates.
  const double bytes_rate_per_thread = p.core_flops / p.flops_per_byte;
  const double miss_bytes_per_thread = miss * bytes_rate_per_thread;

  // Latency limit: t threads sustain t·mlp outstanding lines, i.e.
  // t·mlp·line/latency bytes/s of misses machine-wide.
  const double latency_capacity = t * p.mlp_per_thread * p.line_bytes / p.mem_latency;
  // Bandwidth limit: the memory system itself.
  const double memory_capacity = std::min(latency_capacity, p.mem_bandwidth);

  // If the demanded miss traffic exceeds what memory can deliver, all
  // threads stall proportionally.
  const double demanded = t * miss_bytes_per_thread;
  const double scale = demanded > 0.0 ? std::min(1.0, memory_capacity / demanded) : 1.0;
  return t * p.core_flops * scale;
}

ValleyCurve valley_curve(const ValleyParams& p) {
  ValleyCurve out;
  // Dense at small counts, multiplicative steps later; always include the
  // final thread count so the recovery level is sampled exactly.
  for (std::size_t t = 1; t <= p.max_threads;) {
    out.threads.push_back(static_cast<double>(t));
    out.gflops.push_back(valley_throughput(p, static_cast<double>(t)) / 1e9);
    t = t < 32 ? t + 1 : t + std::max<std::size_t>(1, t / 8);
  }
  if (out.threads.empty() || out.threads.back() != static_cast<double>(p.max_threads)) {
    out.threads.push_back(static_cast<double>(p.max_threads));
    out.gflops.push_back(valley_throughput(p, static_cast<double>(p.max_threads)) / 1e9);
  }
  return out;
}

ValleyFeatures analyze_valley(const ValleyCurve& curve) {
  ValleyFeatures out;
  if (curve.gflops.empty()) return out;
  out.recovered_gflops = curve.gflops.back();

  // Cache peak: running maximum before the first descent; valley: global
  // minimum after that peak.
  std::size_t peak = 0;
  for (std::size_t i = 1; i < curve.gflops.size(); ++i) {
    if (curve.gflops[i] >= curve.gflops[peak])
      peak = i;
    else
      break;
  }
  out.cache_peak_threads = curve.threads[peak];
  out.cache_peak_gflops = curve.gflops[peak];

  std::size_t valley = peak;
  for (std::size_t i = peak; i < curve.gflops.size(); ++i)
    if (curve.gflops[i] < curve.gflops[valley]) valley = i;
  out.valley_threads = curve.threads[valley];
  out.valley_gflops = curve.gflops[valley];
  out.has_valley = valley > peak && out.valley_gflops < out.cache_peak_gflops * 0.98 &&
                   out.recovered_gflops > out.valley_gflops * 1.02;
  return out;
}

}  // namespace opm::core
