#pragma once

#include <string>
#include <vector>

#include "kernels/model.hpp"
#include "sim/platform.hpp"

/// Multi-tenant OPM partitioning — the paper's future-work question 1
/// ("under a multi-user/multi-application scenario, how would OS
/// distribute the OPM resources among applications based on fairness,
/// efficiency and consistency?", section 8) made executable.
///
/// Co-running applications share the OPM capacity. The OS (or hypervisor)
/// assigns each tenant a slice; each tenant's throughput follows its own
/// miss curve evaluated at its slice. This module evaluates partitioning
/// policies against total throughput and fairness.
namespace opm::core {

/// One co-running application: a name plus its kernel model.
struct Tenant {
  std::string name;
  kernels::LocalityModel model;
  /// Throughput if it owned the whole OPM (for fairness normalization);
  /// filled by evaluate().
  double solo_gflops = 0.0;
};

/// How the OPM capacity is split.
enum class PartitionPolicy {
  kEqual,         ///< capacity / tenants each
  kProportional,  ///< proportional to each tenant's footprint
  kOptimal,       ///< hill-climbing on total throughput
};

const char* to_string(PartitionPolicy policy);

/// Result of evaluating one policy.
struct PartitionResult {
  PartitionPolicy policy;
  std::vector<double> slice_bytes;     ///< per-tenant OPM capacity
  std::vector<double> tenant_gflops;   ///< per-tenant throughput at that slice
  double total_gflops = 0.0;
  /// Jain's fairness index over normalized throughput (gflops / solo),
  /// 1.0 = perfectly fair, 1/N = one tenant starves the rest.
  double fairness = 0.0;
};

/// Scales a platform's OPM tiers to `slice` bytes for one tenant's view
/// (bandwidth is shared too: scaled by slice / total).
sim::Platform tenant_view(const sim::Platform& platform, double slice_bytes,
                          double total_opm_bytes, bool share_bandwidth);

/// Evaluates `policy` for the tenants on `platform` (must have an OPM
/// cache tier, e.g. broadwell eDRAM-on or knl cache mode).
PartitionResult evaluate_partition(const sim::Platform& platform, std::vector<Tenant>& tenants,
                                   PartitionPolicy policy, bool share_bandwidth = true);

/// Total OPM (non-standard tier) capacity of a platform in bytes.
double opm_capacity(const sim::Platform& platform);

}  // namespace opm::core
