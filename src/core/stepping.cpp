#include "core/stepping.hpp"

#include <algorithm>
#include <cmath>

namespace opm::core {

SteppingCurve sweep_footprint(const sim::Platform& platform, const ModelAtFootprint& factory,
                              double fp_lo, double fp_hi, std::size_t points,
                              const std::string& label) {
  SteppingCurve curve;
  curve.label = label.empty() ? platform.mode_label : label;
  if (points == 0 || !(fp_hi > fp_lo) || fp_lo <= 0.0) return curve;
  const double log_lo = std::log2(fp_lo);
  const double log_hi = std::log2(fp_hi);
  for (std::size_t i = 0; i < points; ++i) {
    const double t = points > 1 ? static_cast<double>(i) / static_cast<double>(points - 1) : 0.0;
    const double fp = std::exp2(log_lo + (log_hi - log_lo) * t);
    const kernels::LocalityModel model = factory(fp);
    const kernels::Prediction pred = kernels::predict(platform, model);
    curve.footprint_bytes.push_back(fp);
    curve.gflops.push_back(pred.gflops);
  }
  return curve;
}

CurveFeatures analyze_curve(const SteppingCurve& curve) {
  CurveFeatures out;
  const auto& y = curve.gflops;
  const auto& x = curve.footprint_bytes;
  if (y.empty()) return out;
  out.max_gflops = *std::max_element(y.begin(), y.end());

  // A "cache peak" on a stepping curve is usually a plateau edge, not an
  // interior bump: group near-equal samples into plateau runs (0.2%
  // tolerance) and classify each run by its neighbours. A run starting at
  // the curve's left edge counts as preceded-by-rise (the first cache's
  // plateau); the final plateau is neither peak nor valley.
  constexpr double kFlatTol = 0.002;
  constexpr double kProminence = 1.005;
  std::size_t i = 0;
  while (i < y.size()) {
    std::size_t r = i;
    while (r + 1 < y.size() && std::abs(y[r + 1] - y[i]) <= kFlatTol * std::abs(y[i])) ++r;
    const bool at_start = i == 0;
    const bool at_end = r + 1 >= y.size();
    const bool rose_in = at_start || y[i] > y[i - 1] * kProminence;
    const bool fell_in = !at_start && y[i] * kProminence < y[i - 1];
    const bool drops_out = !at_end && y[r + 1] * kProminence < y[r];
    const bool rises_out = !at_end && y[r + 1] > y[r] * kProminence;
    if (rose_in && drops_out) out.peaks.push_back({x[r], y[r]});
    if (fell_in && rises_out) out.valleys.push_back({x[i], y[i]});
    i = r + 1;
  }

  // Final plateau: mean of the last 10% of samples.
  const std::size_t tail = std::max<std::size_t>(1, y.size() / 10);
  double acc = 0.0;
  for (std::size_t k = y.size() - tail; k < y.size(); ++k) acc += y[k];
  out.final_plateau_gflops = acc / static_cast<double>(tail);
  return out;
}

sim::Platform scale_opm(const sim::Platform& platform, double capacity_scale,
                        double bandwidth_scale) {
  sim::Platform out = platform;
  for (auto& tier : out.tiers) {
    if (tier.kind == sim::TierKind::kStandard) continue;
    // Keep the geometry valid: capacity stays a multiple of line x ways.
    const std::uint64_t quantum =
        static_cast<std::uint64_t>(tier.geometry.line_size) * tier.geometry.associativity;
    std::uint64_t cap = static_cast<std::uint64_t>(
        static_cast<double>(tier.geometry.capacity) * capacity_scale);
    cap = std::max<std::uint64_t>(cap / quantum, 1) * quantum;
    tier.geometry.capacity = cap;
    tier.bandwidth *= bandwidth_scale;
  }
  for (auto& dev : out.devices) {
    if (!dev.on_package) continue;
    dev.capacity = static_cast<std::uint64_t>(static_cast<double>(dev.capacity) * capacity_scale);
    dev.bandwidth *= bandwidth_scale;
  }
  if (out.flat_opm_bytes > 0)
    out.flat_opm_bytes =
        static_cast<std::uint64_t>(static_cast<double>(out.flat_opm_bytes) * capacity_scale);
  return out;
}

ModelAtFootprint schematic_kernel(const sim::Platform& platform, double intensity) {
  return [&platform, intensity](double footprint) {
    kernels::LocalityModel m;
    m.footprint = footprint;
    m.total_bytes = footprint;        // one streaming pass per iteration
    m.flops = intensity * footprint;  // fixed arithmetic intensity
    const double bytes = m.total_bytes;
    m.miss_bytes = [bytes, footprint](double capacity) {
      return bytes * kernels::capacity_miss_fraction(footprint, capacity);
    };
    m.compute_efficiency = 0.9;
    m.mlp_max = 10.0 * platform.cores;
    return m;
  };
}

}  // namespace opm::core
