#include "core/sweep.hpp"

#include <atomic>
#include <deque>
#include <memory>
#include <sstream>
#include <thread>

#include "core/result_cache.hpp"
#include "util/csv.hpp"
#include "util/metrics.hpp"
#include "util/mutex.hpp"

namespace opm::core {

namespace {

std::size_t default_workers() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

struct Engine {
  util::Mutex mutex;  // guards pool (re)construction
  /// nullptr until the first parallel sweep constructs it.
  std::unique_ptr<util::ThreadPool> pool OPM_GUARDED_BY(mutex);
  std::atomic<std::size_t> workers{default_workers()};

  util::Mutex log_mutex;
  std::deque<SweepStats> log OPM_GUARDED_BY(log_mutex);
};

Engine& engine() {
  static Engine e;
  return e;
}

constexpr std::size_t kLogCapacity = 256;

void record(SweepStats s) {
  // Process totals go to the metrics registry (one reporting path for
  // bench harnesses and the sweep service); the bounded log below keeps
  // the per-sweep records the CSV/JSON telemetry blocks are built from.
  auto& reg = util::MetricsRegistry::instance();
  reg.counter("sweep.records").add(1);
  reg.counter("sweep.items").add(s.items);
  reg.counter("sweep.tasks").add(s.tasks);
  reg.counter("sweep.steals").add(s.steals);
  reg.double_counter("sweep.wall_seconds").add(s.wall_seconds);
  reg.double_counter("sweep.busy_seconds").add(s.busy_seconds);
  reg.counter("sweep.sim_lines").add(s.sim_lines);

  Engine& e = engine();
  util::MutexLock lock(e.log_mutex);
  if (e.log.size() >= kLogCapacity) e.log.pop_front();
  e.log.push_back(std::move(s));
}

}  // namespace

void set_sweep_workers(std::size_t n) {
  Engine& e = engine();
  util::MutexLock lock(e.mutex);
  e.workers.store(n, std::memory_order_relaxed);
  if (e.pool && e.pool->workers() != n) e.pool.reset();
}

std::size_t sweep_workers() { return engine().workers.load(std::memory_order_relaxed); }

std::vector<SweepStats> sweep_stats_log() {
  Engine& e = engine();
  util::MutexLock lock(e.log_mutex);
  return {e.log.begin(), e.log.end()};
}

std::vector<SweepStats> drain_sweep_stats() {
  Engine& e = engine();
  util::MutexLock lock(e.log_mutex);
  std::vector<SweepStats> out(e.log.begin(), e.log.end());
  e.log.clear();
  return out;
}

void write_sweep_stats_csv(std::ostream& os, const std::vector<SweepStats>& stats) {
  util::CsvWriter csv(os);
  csv.header({"sweep", "workers", "items", "tasks", "steals", "wall_s", "busy_s",
              "speedup_est", "cache_hits", "cache_misses", "cache_loaded_b",
              "cache_stored_b", "cache_s", "cache_src", "sim_lines", "sim_lines_per_s",
              "sampled", "max_rel_err"});
  for (const auto& s : stats)
    csv.row(s.name, s.workers, s.items, s.tasks, s.steals, s.wall_seconds, s.busy_seconds,
            s.speedup_estimate(), s.cache_hits, s.cache_misses, s.cache_bytes_loaded,
            s.cache_bytes_stored, s.cache_seconds, s.cache_source, s.sim_lines,
            s.sim_lines_per_sec(), s.sampled ? 1 : 0, s.max_rel_error);
}

std::string sweep_stats_json(const SweepStats& s) {
  std::ostringstream os;
  os << "{\"sweep\":\"" << s.name << "\",\"workers\":" << s.workers
     << ",\"items\":" << s.items << ",\"tasks\":" << s.tasks << ",\"steals\":" << s.steals
     << ",\"wall_s\":" << s.wall_seconds << ",\"busy_s\":" << s.busy_seconds
     << ",\"speedup_est\":" << s.speedup_estimate() << ",\"cache\":{\"hits\":"
     << s.cache_hits << ",\"misses\":" << s.cache_misses << ",\"loaded_b\":"
     << s.cache_bytes_loaded << ",\"stored_b\":" << s.cache_bytes_stored
     << ",\"seconds\":" << s.cache_seconds << ",\"source\":\"" << s.cache_source
     << "\"},\"sim_lines\":" << s.sim_lines
     << ",\"sim_lines_per_s\":" << s.sim_lines_per_sec()
     << ",\"sampled\":" << (s.sampled ? "true" : "false")
     << ",\"max_rel_error\":" << s.max_rel_error << ",\"worker_busy_s\":[";
  for (std::size_t i = 0; i < s.worker_busy_seconds.size(); ++i)
    os << (i ? "," : "") << s.worker_busy_seconds[i];
  os << "]}";
  return os.str();
}

namespace detail {

util::ThreadPool* sweep_pool() {
  Engine& e = engine();
  const std::size_t n = e.workers.load(std::memory_order_relaxed);
  if (n == 0) return nullptr;
  util::MutexLock lock(e.mutex);
  if (!e.pool || e.pool->workers() != n)
    e.pool = std::make_unique<util::ThreadPool>(n);
  return e.pool.get();
}

namespace {
/// Sweep-nesting depth of the calling thread; only depth-1 sweeps record
/// (a nested sweep's work belongs to its enclosing record).
thread_local int t_sweep_depth = 0;
}  // namespace

SweepTimer::SweepTimer(const char* name, std::size_t items, util::ThreadPool* pool)
    : name_(name), items_(items), pool_(pool) {
  ++t_sweep_depth;
  // A sweep launched from inside a pool task, or from inside another
  // sweep on this thread, is nested: its chunks are already accounted to
  // the enclosing top-level sweep.
  if (t_sweep_depth > 1 || (pool_ && pool_->on_worker_thread())) return;
  active_ = true;
  if (pool_) before_ = pool_->worker_counters();
  auto& reg = util::MetricsRegistry::instance();
  sim_lines_before_ = reg.counter("sim.lines_simulated").value();
  sampled_windows_before_ = reg.counter("sim.sampled_windows").value();
  rel_error_before_ = reg.double_counter("sim.sampling_rel_error").value();
  t0_ = std::chrono::steady_clock::now();
}

void SweepTimer::stop() {
  if (stopped_) return;
  stopped_ = true;
  --t_sweep_depth;
  if (!active_) return;
  active_ = false;
  SweepStats s;
  s.name = name_;
  s.items = items_;
  s.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_).count();
  // Simulated-line delta over the sweep. MemorySystems publish their line
  // counts at report()/reset()/destruction (watermark scheme), all of
  // which happen inside the per-item task for trace-driven sweeps.
  auto& reg = util::MetricsRegistry::instance();
  s.sim_lines = reg.counter("sim.lines_simulated").value() - sim_lines_before_;
  s.sampled = reg.counter("sim.sampled_windows").value() > sampled_windows_before_;
  if (s.sampled)
    s.max_rel_error =
        reg.double_counter("sim.sampling_rel_error").value() - rel_error_before_;
  if (pool_ == nullptr) {
    s.workers = 0;
    s.tasks = 1;
    s.busy_seconds = s.wall_seconds;
  } else {
    s.workers = pool_->workers();
    const auto after = pool_->worker_counters();
    s.worker_busy_seconds.resize(after.size(), 0.0);
    for (std::size_t i = 0; i < after.size(); ++i) {
      const auto& b = before_[i];
      s.tasks += after[i].tasks - b.tasks;
      s.steals += after[i].steals - b.steals;
      s.worker_busy_seconds[i] = after[i].busy_seconds - b.busy_seconds;
      s.busy_seconds += s.worker_busy_seconds[i];
    }
  }
  record(std::move(s));
}

namespace {

/// Matches SweepTimer's "is this a top-level sweep?" rule without
/// constructing the pool: a cache hit needs no workers, so a nil pool
/// means the caller cannot be on a worker thread.
bool top_level_sweep() {
  if (t_sweep_depth > 0) return false;
  Engine& e = engine();
  util::MutexLock lock(e.mutex);
  return !(e.pool && e.pool->on_worker_thread());
}

}  // namespace

void record_cache_hit(const char* name, std::size_t items, const CacheProbe& probe) {
  if (!top_level_sweep()) return;
  SweepStats s;
  s.name = name;
  s.items = items;
  s.workers = 0;
  s.tasks = 0;
  s.wall_seconds = probe.lookup_seconds;
  s.busy_seconds = probe.lookup_seconds;
  s.cache_hits = 1;
  s.cache_bytes_loaded = probe.bytes_loaded;
  s.cache_seconds = probe.lookup_seconds;
  s.cache_source = probe.source;
  record(std::move(s));
}

void annotate_cache_miss(const char* name, const CacheProbe& probe) {
  Engine& e = engine();
  util::MutexLock lock(e.log_mutex);
  for (auto it = e.log.rbegin(); it != e.log.rend(); ++it) {
    if (it->name != name) continue;
    it->cache_misses += 1;
    it->cache_bytes_stored += probe.bytes_stored;
    it->cache_seconds += probe.lookup_seconds + probe.store_seconds;
    it->cache_source = probe.source;
    return;
  }
}

}  // namespace detail

}  // namespace opm::core
