#include "core/sweep_config.hpp"

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>

#include "core/sweep.hpp"
#include "util/cli.hpp"

namespace opm::core {

namespace {

std::atomic<bool> g_telemetry{true};

/// getenv as a string, empty when unset.
std::string env_str(const char* name) {
  const char* v = std::getenv(name);
  return v ? std::string(v) : std::string();
}

/// True for "1"/"true"/"yes"/"on" (the common shell spellings).
bool truthy(const std::string& v) {
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

}  // namespace

SweepConfig default_sweep_config() {
  SweepConfig cfg;
  const unsigned hw = std::thread::hardware_concurrency();
  cfg.workers = hw == 0 ? 1 : hw;
  cfg.telemetry = true;
  cfg.cache.enabled = true;
  cfg.cache.disk = true;
  return cfg;
}

SweepConfig apply_env(SweepConfig base) {
  if (const std::string v = env_str("OPM_SWEEP_WORKERS"); !v.empty()) {
    char* end = nullptr;
    const long n = std::strtol(v.c_str(), &end, 10);
    if (end && *end == '\0' && n >= 0) base.workers = static_cast<std::size_t>(n);
  }
  if (const std::string v = env_str("OPM_CACHE_DIR"); !v.empty()) {
    base.cache.dir = v;
    base.cache.enabled = true;
  }
  if (const std::string v = env_str("OPM_CACHE_MAX_BYTES"); !v.empty()) {
    char* end = nullptr;
    const long long n = std::strtoll(v.c_str(), &end, 10);
    if (end && *end == '\0' && n >= 0) base.cache.max_disk_bytes = static_cast<std::size_t>(n);
  }
  if (truthy(env_str("OPM_NO_CACHE"))) base.cache.enabled = false;
  if (const std::string v = env_str("OPM_SWEEP_STATS"); !v.empty())
    base.telemetry = truthy(v);
  if (const std::string v = env_str("OPM_SAMPLE"); !v.empty())
    sim::parse_sampling_mode(v, &base.sampling);
  return base;
}

SweepConfig resolve_sweep_config(int argc, const char* const* argv) {
  SweepConfig cfg = apply_env(default_sweep_config());
  const util::Cli cli(argc, argv);
  if (cli.has("sweep-workers")) {
    const std::int64_t n = cli.get_int("sweep-workers", -1);
    if (n >= 0) cfg.workers = static_cast<std::size_t>(n);
  }
  if (cli.has("cache-dir")) {
    const std::string dir = cli.get("cache-dir", cfg.cache.dir);
    if (!dir.empty()) {
      cfg.cache.dir = dir;
      cfg.cache.enabled = true;
    }
  }
  if (cli.has("cache-max-bytes")) {
    const std::int64_t n = cli.get_int("cache-max-bytes", -1);
    if (n >= 0) cfg.cache.max_disk_bytes = static_cast<std::size_t>(n);
  }
  if (cli.has("no-cache")) cfg.cache.enabled = false;
  if (cli.has("no-sweep-stats")) cfg.telemetry = false;
  if (cli.has("sample")) sim::parse_sampling_mode(cli.get("sample", ""), &cfg.sampling);
  return cfg;
}

void apply_sweep_config(const SweepConfig& config) {
  set_sweep_workers(config.workers);
  configure_result_cache(config.cache);
  set_sweep_telemetry(config.telemetry);
  sim::set_sampling_mode(config.sampling);
}

void set_sweep_telemetry(bool enabled) {
  g_telemetry.store(enabled, std::memory_order_relaxed);
}

bool sweep_telemetry() { return g_telemetry.load(std::memory_order_relaxed); }

}  // namespace opm::core
