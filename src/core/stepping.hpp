#pragma once

#include <functional>
#include <string>
#include <vector>

#include "kernels/model.hpp"
#include "sim/platform.hpp"

/// The Stepping Model — the paper's visual analytic model (Figure 6) made
/// executable.
///
/// A stepping curve is throughput versus problem footprint on a platform:
/// each cache tier contributes a *cache peak* near its capacity, possibly
/// followed by a *cache valley* where the next tier's bandwidth cannot yet
/// be saturated (insufficient memory-level parallelism), before settling
/// on the next tier's plateau. This module sweeps any kernel's analytical
/// model across footprints, extracts peaks/valleys/plateaus, and supports
/// the guideline figures (28–30) including hardware what-if scaling.
namespace opm::core {

/// Factory: problem footprint scale -> kernel LocalityModel at that scale.
using ModelAtFootprint = std::function<kernels::LocalityModel(double)>;

/// One throughput-vs-footprint curve.
struct SteppingCurve {
  std::string label;
  std::vector<double> footprint_bytes;  ///< log-spaced sweep points
  std::vector<double> gflops;
};

/// Sweeps `factory` on `platform` across [fp_lo, fp_hi] bytes with
/// `points` log-spaced samples.
SteppingCurve sweep_footprint(const sim::Platform& platform, const ModelAtFootprint& factory,
                              double fp_lo, double fp_hi, std::size_t points,
                              const std::string& label = "");

/// A detected stationary feature of a curve.
struct CurveFeature {
  double footprint_bytes = 0.0;
  double gflops = 0.0;
};

/// Peaks and valleys of a stepping curve (strict local extrema on the
/// sampled grid, endpoints excluded).
struct CurveFeatures {
  std::vector<CurveFeature> peaks;
  std::vector<CurveFeature> valleys;
  double max_gflops = 0.0;
  double final_plateau_gflops = 0.0;  ///< mean over the last decade
};

CurveFeatures analyze_curve(const SteppingCurve& curve);

/// Hardware what-if of Figure 30: returns a copy of `platform` with every
/// non-standard (OPM) tier's capacity scaled by `capacity_scale` and
/// bandwidth by `bandwidth_scale`.
sim::Platform scale_opm(const sim::Platform& platform, double capacity_scale,
                        double bandwidth_scale);

/// The generic synthetic kernel of the schematic Figure 6: a streaming
/// kernel with the given arithmetic intensity, for drawing the canonical
/// stepping shape on any platform.
ModelAtFootprint schematic_kernel(const sim::Platform& platform, double intensity);

}  // namespace opm::core
