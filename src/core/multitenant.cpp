#include "core/multitenant.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/stepping.hpp"

namespace opm::core {

const char* to_string(PartitionPolicy policy) {
  switch (policy) {
    case PartitionPolicy::kEqual: return "equal";
    case PartitionPolicy::kProportional: return "proportional";
    case PartitionPolicy::kOptimal: return "optimal";
  }
  return "?";
}

double opm_capacity(const sim::Platform& platform) {
  double total = 0.0;
  for (const auto& tier : platform.tiers)
    if (tier.kind != sim::TierKind::kStandard)
      total += static_cast<double>(tier.geometry.capacity);
  return total;
}

sim::Platform tenant_view(const sim::Platform& platform, double slice_bytes,
                          double total_opm_bytes, bool share_bandwidth) {
  const double cap_scale =
      total_opm_bytes > 0.0 ? std::max(slice_bytes / total_opm_bytes, 1e-6) : 1.0;
  // Bandwidth is a shared resource: a tenant with half the capacity draws
  // roughly half the channel time in steady state.
  const double bw_scale = share_bandwidth ? cap_scale : 1.0;
  return scale_opm(platform, cap_scale, bw_scale);
}

namespace {

double tenant_gflops_at(const sim::Platform& platform, const Tenant& tenant,
                        double slice_bytes, double total, bool share_bandwidth) {
  const sim::Platform view = tenant_view(platform, slice_bytes, total, share_bandwidth);
  return kernels::predict(view, tenant.model).gflops;
}

double jain_fairness(const std::vector<double>& normalized) {
  double sum = 0.0, sq = 0.0;
  for (double v : normalized) {
    sum += v;
    sq += v * v;
  }
  if (sq <= 0.0) return 0.0;
  return sum * sum / (static_cast<double>(normalized.size()) * sq);
}

}  // namespace

PartitionResult evaluate_partition(const sim::Platform& platform, std::vector<Tenant>& tenants,
                                   PartitionPolicy policy, bool share_bandwidth) {
  PartitionResult out;
  out.policy = policy;
  const double total = opm_capacity(platform);
  const std::size_t n = tenants.size();
  if (n == 0 || total <= 0.0) return out;

  // Solo baselines for the fairness normalization.
  for (auto& t : tenants)
    t.solo_gflops = tenant_gflops_at(platform, t, total, total, share_bandwidth);

  out.slice_bytes.assign(n, total / static_cast<double>(n));
  if (policy == PartitionPolicy::kProportional) {
    double fp_sum = 0.0;
    for (const auto& t : tenants) fp_sum += t.model.footprint;
    for (std::size_t i = 0; i < n; ++i)
      out.slice_bytes[i] = fp_sum > 0.0 ? total * tenants[i].model.footprint / fp_sum
                                        : total / static_cast<double>(n);
  } else if (policy == PartitionPolicy::kOptimal) {
    // Greedy hill climbing in 1/32 granules: repeatedly move a granule
    // from the donor losing least to the receiver gaining most.
    const double granule = total / 32.0;
    for (int iter = 0; iter < 256; ++iter) {
      double best_gain = 1e-9;
      std::size_t best_from = n, best_to = n;
      for (std::size_t from = 0; from < n; ++from) {
        if (out.slice_bytes[from] < granule * 1.5) continue;
        for (std::size_t to = 0; to < n; ++to) {
          if (to == from) continue;
          const double before =
              tenant_gflops_at(platform, tenants[from], out.slice_bytes[from], total,
                               share_bandwidth) +
              tenant_gflops_at(platform, tenants[to], out.slice_bytes[to], total,
                               share_bandwidth);
          const double after =
              tenant_gflops_at(platform, tenants[from], out.slice_bytes[from] - granule,
                               total, share_bandwidth) +
              tenant_gflops_at(platform, tenants[to], out.slice_bytes[to] + granule, total,
                               share_bandwidth);
          if (after - before > best_gain) {
            best_gain = after - before;
            best_from = from;
            best_to = to;
          }
        }
      }
      if (best_from == n) break;  // local optimum
      out.slice_bytes[best_from] -= granule;
      out.slice_bytes[best_to] += granule;
    }
  }

  std::vector<double> normalized;
  for (std::size_t i = 0; i < n; ++i) {
    const double g =
        tenant_gflops_at(platform, tenants[i], out.slice_bytes[i], total, share_bandwidth);
    out.tenant_gflops.push_back(g);
    out.total_gflops += g;
    normalized.push_back(tenants[i].solo_gflops > 0.0 ? g / tenants[i].solo_gflops : 0.0);
  }
  out.fairness = jain_fairness(normalized);
  return out;
}

}  // namespace opm::core
