#include "core/experiment.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "core/result_cache.hpp"
#include "core/sweep.hpp"
#include "kernels/cholesky.hpp"
#include "kernels/fft.hpp"
#include "kernels/gemm.hpp"
#include "kernels/spmv.hpp"
#include "kernels/sptrans.hpp"
#include "kernels/sptrsv.hpp"
#include "kernels/stencil.hpp"
#include "kernels/stream.hpp"
#include "sim/power.hpp"

namespace opm::core {

const char* to_string(KernelId id) {
  switch (id) {
    case KernelId::kGemm: return "GEMM";
    case KernelId::kCholesky: return "Cholesky";
    case KernelId::kSpmv: return "SpMV";
    case KernelId::kSptrans: return "SpTRANS";
    case KernelId::kSptrsv: return "SpTRSV";
    case KernelId::kFft: return "FFT";
    case KernelId::kStencil: return "Stencil";
    case KernelId::kStream: return "Stream";
  }
  return "?";
}

namespace {

/// Renders a double as a C99 hex float ("%a"): exact, locale-independent,
/// and round-trippable, so serializations are stable across platforms.
std::string hexf(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

/// Consults the result cache around `compute`. On a hit the payload is the
/// exact bytes a cold run would produce and a synthetic SweepStats record
/// is logged under the sweep's name; on a miss the computed sweep's own
/// record is annotated with the probe. With the cache disabled this is a
/// plain call to `compute`.
template <typename T, typename Fn>
std::vector<T> cached_sweep(const std::string& name, const util::Digest128& key,
                            Fn&& compute) {
  ResultCache& cache = ResultCache::instance();
  if (!cache.enabled()) return compute();
  CacheProbe probe;
  if (auto hit = cache.find<T>(key, &probe)) {
    detail::record_cache_hit(name.c_str(), hit->size(), probe);
    return std::move(*hit);
  }
  std::vector<T> out = compute();
  cache.store<T>(key, out, &probe);
  detail::annotate_cache_miss(name.c_str(), probe);
  return out;
}

/// Row-length skew assumed per family (feeds the SpMV/CSR efficiency
/// penalty; validated against materialized MatrixStats in tests).
double family_row_cv(sparse::Family family) {
  switch (family) {
    case sparse::Family::kRmat: return 3.0;
    case sparse::Family::kArrow: return 4.0;
    case sparse::Family::kRandomUniform: return 0.3;
    default: return 0.15;
  }
}

kernels::LocalityModel sparse_model(const sim::Platform& platform, KernelId kernel,
                                    const sparse::MatrixDescriptor& d, bool merge_based) {
  const auto rows = static_cast<double>(d.rows);
  const auto nnz = static_cast<double>(d.nnz);
  switch (kernel) {
    case KernelId::kSpmv:
      return kernels::spmv_model(
          platform, {.rows = rows, .nnz = nnz, .locality = d.locality,
                     .row_cv = family_row_cv(d.family), .csr5 = true});
    case KernelId::kSptrans:
      return kernels::sptrans_model(platform, {.rows = rows, .nnz = nnz,
                                               .locality = d.locality,
                                               .merge_based = merge_based});
    case KernelId::kSptrsv: {
      const double par = kernels::estimate_sptrsv_parallelism(d);
      return kernels::sptrsv_model(platform, {.rows = rows, .nnz = nnz,
                                              .locality = d.locality,
                                              .avg_parallelism = par,
                                              .levels = rows / par});
    }
    default:
      throw std::invalid_argument("sparse_model: not a sparse kernel");
  }
}

kernels::LocalityModel footprint_model(const sim::Platform& platform, KernelId kernel,
                                       double fp) {
  switch (kernel) {
    case KernelId::kStream:
      return kernels::stream_model(platform, fp / 24.0);
    case KernelId::kStencil:
      return kernels::stencil_model(platform, std::cbrt(fp / 16.0));
    case KernelId::kFft:
      return kernels::fft_model(platform, std::cbrt(fp / 16.0));
    default:
      throw std::invalid_argument("footprint_model: not a footprint kernel");
  }
}

}  // namespace

// ---------------------------------------------------------------- requests --

std::string serialize(const DenseSweepRequest& req) {
  std::string s = "dense{kernel=";
  s += to_string(req.kernel);
  s += ",n_lo=" + hexf(req.n_lo) + ",n_hi=" + hexf(req.n_hi);
  s += ",n_step=" + hexf(req.n_step) + ",nb_lo=" + hexf(req.nb_lo);
  s += ",nb_hi=" + hexf(req.nb_hi) + ",nb_step=" + hexf(req.nb_step) + "}";
  return s;
}

std::string serialize(const SparseSweepRequest& req) {
  std::string s = "sparse{kernel=";
  s += to_string(req.kernel);
  s += ",merge_based=";
  s += req.merge_based ? "1" : "0";
  s += "}";
  return s;
}

std::string serialize(const FootprintSweepRequest& req) {
  std::string s = "footprint{kernel=";
  s += to_string(req.kernel);
  s += ",fp_lo=" + hexf(req.fp_lo) + ",fp_hi=" + hexf(req.fp_hi);
  s += ",points=" + std::to_string(req.points) + "}";  // opm-lint: allow(float-print) — integer field
  return s;
}

namespace {

/// Common key prefix: domain tag, cache version, platform spec.
util::Hasher128 key_base(const char* tag, const sim::Platform& platform) {
  util::Hasher128 h;
  h.add(std::string_view(tag));
  h.add(kResultCacheVersion);
  sim::hash_platform(h, platform);
  return h;
}

}  // namespace

util::Digest128 sweep_cache_key(const sim::Platform& platform, const DenseSweepRequest& req) {
  util::Hasher128 h = key_base("opm.sweep_dense", platform);
  h.add(std::string_view(serialize(req)));
  return h.digest();
}

util::Digest128 sweep_cache_key(const sim::Platform& platform, const SparseSweepRequest& req,
                                const sparse::SyntheticCollection& suite) {
  util::Hasher128 h = key_base("opm.sweep_sparse", platform);
  h.add(std::string_view(serialize(req)));
  const util::Digest128 sfp = suite.fingerprint();
  h.add(sfp.hi);
  h.add(sfp.lo);
  return h.digest();
}

util::Digest128 sweep_cache_key(const sim::Platform& platform,
                                const FootprintSweepRequest& req) {
  util::Hasher128 h = key_base("opm.sweep_footprint", platform);
  h.add(std::string_view(serialize(req)));
  return h.digest();
}

// ------------------------------------------------------------------ sweeps --

std::vector<SweepPoint> sweep_dense(const sim::Platform& platform,
                                    const DenseSweepRequest& req) {
  const std::string name = std::string("sweep_dense:") + to_string(req.kernel);
  return cached_sweep<SweepPoint>(name, sweep_cache_key(platform, req), [&] {
    // The grid coordinates are accumulated serially (floating-point step
    // sums must not depend on the worker count); only the model
    // evaluations fan out.
    std::vector<std::pair<double, double>> grid;
    for (double n = req.n_lo; n <= req.n_hi; n += req.n_step)
      for (double nb = req.nb_lo; nb <= req.nb_hi; nb += req.nb_step) grid.emplace_back(n, nb);

    return sweep_transform(name.c_str(), grid.size(), 4, [&](std::size_t i) {
      const auto [n, nb] = grid[i];
      const kernels::LocalityModel model =
          req.kernel == KernelId::kGemm ? kernels::gemm_model(platform, n, nb)
                                        : kernels::cholesky_model(platform, n, nb);
      const kernels::Prediction pred = kernels::predict(platform, model);
      return SweepPoint{.x = n, .y = nb, .gflops = pred.gflops, .footprint = model.footprint};
    });
  });
}

std::vector<SweepPoint> sweep_sparse(const sim::Platform& platform,
                                     const SparseSweepRequest& req,
                                     const sparse::SyntheticCollection& suite) {
  const std::string name = std::string("sweep_sparse:") + to_string(req.kernel);
  return cached_sweep<SweepPoint>(name, sweep_cache_key(platform, req, suite), [&] {
    return sweep_transform(name.c_str(), suite.size(), 8, [&](std::size_t i) {
      const auto& d = suite.descriptor(i);
      const kernels::LocalityModel model =
          sparse_model(platform, req.kernel, d, req.merge_based);
      const kernels::Prediction pred = kernels::predict(platform, model);
      return SweepPoint{.x = model.footprint,
                        .y = 0.0,
                        .gflops = pred.gflops,
                        .footprint = model.footprint,
                        .rows = static_cast<double>(d.rows),
                        .nnz = static_cast<double>(d.nnz),
                        .input_id = d.id};
    });
  });
}

std::vector<SweepPoint> sweep_footprint_kernel(const sim::Platform& platform,
                                               const FootprintSweepRequest& req) {
  if (req.points == 0 || !(req.fp_hi > req.fp_lo)) return {};
  const std::string name = std::string("sweep_footprint:") + to_string(req.kernel);
  return cached_sweep<SweepPoint>(name, sweep_cache_key(platform, req), [&] {
    const double log_lo = std::log2(req.fp_lo);
    const double log_hi = std::log2(req.fp_hi);
    return sweep_transform(name.c_str(), req.points, 8, [&](std::size_t i) {
      const double t =
          req.points > 1 ? static_cast<double>(i) / static_cast<double>(req.points - 1) : 0.0;
      const double fp = std::exp2(log_lo + (log_hi - log_lo) * t);
      const kernels::LocalityModel model = footprint_model(platform, req.kernel, fp);
      const kernels::Prediction pred = kernels::predict(platform, model);
      return SweepPoint{.x = fp, .y = 0.0, .gflops = pred.gflops, .footprint = model.footprint};
    });
  });
}

// ------------------------------------------------------------------ tables --

std::vector<double> table_inputs_gflops(const sim::Platform& platform, KernelId kernel,
                                        const sparse::SyntheticCollection& suite) {
  const bool knl = platform.cores >= 32;
  util::Hasher128 h = key_base("opm.table_inputs", platform);
  h.add(std::string_view(to_string(kernel)));
  const util::Digest128 sfp = suite.fingerprint();
  h.add(sfp.hi);
  h.add(sfp.lo);
  const std::string name = std::string("table_inputs:") + to_string(kernel);
  return cached_sweep<double>(name, h.digest(), [&]() -> std::vector<double> {
    std::vector<double> out;
    switch (kernel) {
      case KernelId::kGemm:
      case KernelId::kCholesky: {
        const double n_hi = knl ? 32000.0 : 16128.0;
        for (const auto& p :
             sweep_dense(platform, {.kernel = kernel,
                                    .n_lo = 256.0,
                                    .n_hi = n_hi,
                                    .n_step = (n_hi - 256.0) / 15.0,
                                    .nb_lo = 128.0,
                                    .nb_hi = 4096.0,
                                    .nb_step = 256.0}))
          out.push_back(p.gflops);
        return out;
      }
      case KernelId::kSpmv:
      case KernelId::kSptrans:
      case KernelId::kSptrsv: {
        for (const auto& p :
             sweep_sparse(platform, {.kernel = kernel, .merge_based = knl}, suite))
          out.push_back(p.gflops);
        return out;
      }
      case KernelId::kStream: {
        // Appendix A.2.8: array sizes up to 2^24 elements on Broadwell and
        // 2^26 on KNL — footprints capped well inside MCDRAM.
        const double fp_hi = (knl ? double(1 << 26) : double(1 << 24)) * 24.0;
        for (const auto& p : sweep_footprint_kernel(
                 platform,
                 {.kernel = kernel, .fp_lo = 16.0 * 1024, .fp_hi = fp_hi, .points = 64}))
          out.push_back(p.gflops);
        return out;
      }
      case KernelId::kStencil:
      case KernelId::kFft: {
        // Grids from ~8 MB up to a quarter of DDR (past the 16 GB MCDRAM
        // boundary on KNL, exposing the flat-mode spill).
        const double fp_lo = 8.0 * 1024 * 1024;
        const double fp_hi = static_cast<double>(platform.ddr().capacity) * 0.25;
        for (const auto& p : sweep_footprint_kernel(
                 platform, {.kernel = kernel, .fp_lo = fp_lo, .fp_hi = fp_hi, .points = 64}))
          out.push_back(p.gflops);
        return out;
      }
    }
    return out;
  });
}

namespace {
constexpr KernelId kAllKernels[] = {KernelId::kGemm,    KernelId::kCholesky,
                                    KernelId::kSpmv,    KernelId::kSptrans,
                                    KernelId::kSptrsv,  KernelId::kFft,
                                    KernelId::kStencil, KernelId::kStream};
constexpr std::size_t kKernelCount = std::size(kAllKernels);

/// Table keys hash the suite fingerprint only — the paper's platform
/// matrix is fixed inside each table function, so it is captured by the
/// domain tag plus the cache version.
util::Digest128 suite_key(const char* tag, const sparse::SyntheticCollection& suite) {
  util::Hasher128 h;
  h.add(std::string_view(tag));
  h.add(kResultCacheVersion);
  const util::Digest128 sfp = suite.fingerprint();
  h.add(sfp.hi);
  h.add(sfp.lo);
  return h.digest();
}
}  // namespace

std::vector<KernelSummary> table4_edram(const sparse::SyntheticCollection& suite) {
  return cached_sweep<KernelSummary>("table4_edram", suite_key("opm.table4_edram", suite), [&] {
    const sim::Platform off = sim::broadwell(sim::EdramMode::kOff);
    const sim::Platform on = sim::broadwell(sim::EdramMode::kOn);
    // Kernels fan out as the top-level sweep; the per-kernel input sweeps
    // nest inside it on the same pool.
    return sweep_transform("table4_edram", kKernelCount, 1, [&](std::size_t ki) {
      const KernelId k = kAllKernels[ki];
      const auto base = table_inputs_gflops(off, k, suite);
      const auto opm = table_inputs_gflops(on, k, suite);
      return KernelSummary{k, summarize_speedup(base, opm)};
    });
  });
}

std::vector<ModeSummary> table5_mcdram(const sparse::SyntheticCollection& suite) {
  return cached_sweep<ModeSummary>("table5_mcdram", suite_key("opm.table5_mcdram", suite), [&] {
    const sim::Platform ddr = sim::knl(sim::McdramMode::kOff);
    const sim::Platform flat = sim::knl(sim::McdramMode::kFlat);
    const sim::Platform cache = sim::knl(sim::McdramMode::kCache);
    const sim::Platform hybrid = sim::knl(sim::McdramMode::kHybrid);
    return sweep_transform("table5_mcdram", kKernelCount, 1, [&](std::size_t ki) {
      const KernelId k = kAllKernels[ki];
      const auto base = table_inputs_gflops(ddr, k, suite);
      ModeSummary row;
      row.kernel = k;
      row.flat = summarize_speedup(base, table_inputs_gflops(flat, k, suite));
      row.cache = summarize_speedup(base, table_inputs_gflops(cache, k, suite));
      row.hybrid = summarize_speedup(base, table_inputs_gflops(hybrid, k, suite));
      return row;
    });
  });
}

std::vector<PowerRow> power_rows(const sim::Platform& platform,
                                 const sparse::SyntheticCollection& suite) {
  const bool knl = platform.cores >= 32;
  util::Hasher128 kh = key_base("opm.power_rows", platform);
  const util::Digest128 sfp = suite.fingerprint();
  kh.add(sfp.hi);
  kh.add(sfp.lo);
  return cached_sweep<PowerRow>("power_rows", kh.digest(), [&] {
    return sweep_transform("power_rows", kKernelCount, 1, [&](std::size_t ki) {
      const KernelId k = kAllKernels[ki];
      // The canonical input list is built serially; the per-input power
      // estimates fan out (nested) and are then averaged in index order, so
      // the row is bit-identical to the old serial accumulation.
      std::vector<kernels::LocalityModel> models;
      switch (k) {
        case KernelId::kGemm:
        case KernelId::kCholesky: {
          const double n_hi = knl ? 32000.0 : 16128.0;
          for (double n = 1024.0; n <= n_hi; n += (n_hi - 1024.0) / 7.0)
            models.push_back(k == KernelId::kGemm
                                 ? kernels::gemm_model(platform, n, 512.0)
                                 : kernels::cholesky_model(platform, n, 512.0));
          break;
        }
        case KernelId::kSpmv:
        case KernelId::kSptrans:
        case KernelId::kSptrsv: {
          for (std::size_t i = 0; i < suite.size(); i += suite.size() / 32 + 1)
            models.push_back(sparse_model(platform, k, suite.descriptor(i), knl));
          break;
        }
        default: {
          const double fp_lo = 4.0 * 1024 * 1024;
          const double fp_hi = static_cast<double>(platform.ddr().capacity) * 0.25;
          for (const auto& p : sweep_footprint_kernel(
                   platform, {.kernel = k, .fp_lo = fp_lo, .fp_hi = fp_hi, .points = 16}))
            models.push_back(footprint_model(platform, k, p.x));
          break;
        }
      }
      const auto estimates =
          sweep_transform("power_rows:inputs", models.size(), 4, [&](std::size_t i) {
            const kernels::Prediction pred = kernels::predict(platform, models[i]);
            // Even bandwidth-bound kernels keep the cores and uncore roughly
            // half busy (stalled pipelines, prefetchers, memory controllers),
            // so package activity is floored at 0.5 during a run — this is
            // what keeps the relative OPM power delta near the paper's
            // +8.6%/+6.9%.
            const double activity = std::max(pred.utilization, 0.5);
            const sim::PowerEstimate p =
                sim::estimate_power(platform, activity, pred.ddr_gbps, pred.opm_gbps);
            return std::pair<double, double>{p.package, p.dram};
          });
      PowerRow row{.kernel = k};
      for (const auto& [package, dram] : estimates) {
        row.package_watts += package;
        row.dram_watts += dram;
      }
      if (!estimates.empty()) {
        row.package_watts /= static_cast<double>(estimates.size());
        row.dram_watts /= static_cast<double>(estimates.size());
      }
      return row;
    });
  });
}

}  // namespace opm::core
