#include "core/result_cache.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <list>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "util/metrics.hpp"
#include "util/mutex.hpp"

namespace opm::core {

namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// ---------------------------------------------------------- record format --
//
// One record per key, named <hex32>.opmrec. Fixed 48-byte header followed
// by the raw payload bytes. Host-endian: records are a per-machine cache,
// not an interchange format. Every field is validated on read; any
// mismatch degrades to a miss.

constexpr char kMagic[4] = {'O', 'P', 'M', 'R'};
constexpr std::size_t kHeaderBytes = 48;

void put_u32(unsigned char* p, std::uint32_t v) { std::memcpy(p, &v, 4); }
void put_u64(unsigned char* p, std::uint64_t v) { std::memcpy(p, &v, 8); }
std::uint32_t get_u32(const unsigned char* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

std::uint64_t payload_checksum(const std::vector<std::byte>& payload) {
  util::Hasher128 h;
  h.add_bytes(payload.data(), payload.size());
  return h.digest().lo;
}

enum class ReadOutcome { kOk, kAbsent, kCorrupt, kVersionSkew, kTypeMismatch, kIoError };

struct DigestHash {
  std::size_t operator()(const util::Digest128& d) const {
    return static_cast<std::size_t>(d.lo ^ (d.hi * 0x9e3779b97f4a7c15ull));
  }
};

}  // namespace

struct ResultCache::Impl {
  struct Entry {
    util::Digest128 key;
    std::size_t elem_size = 0;
    std::vector<std::byte> payload;
  };

  struct Shard {
    util::Mutex mutex;
    std::list<Entry> lru OPM_GUARDED_BY(mutex);  // front = most recently used
    std::unordered_map<util::Digest128, std::list<Entry>::iterator, DigestHash> index
        OPM_GUARDED_BY(mutex);
  };

  static constexpr std::size_t kShards = 16;

  mutable util::Mutex config_mutex;
  CacheConfig config OPM_GUARDED_BY(config_mutex);
  std::atomic<bool> enabled{false};
  std::atomic<std::size_t> per_shard_cap{4096 / kShards};
  Shard shards[kShards];

  // Stats live in the process-wide metrics registry ("cache.*" names) so
  // every reporting surface — bench stats blocks, the opm_serve stats
  // request — reads the same counters. The references resolve once here
  // and are lock-free to bump (lookups run concurrently on sweep workers).
  util::MetricsRegistry& registry = util::MetricsRegistry::instance();
  util::Counter& memory_hits = registry.counter("cache.memory_hits");
  util::Counter& disk_hits = registry.counter("cache.disk_hits");
  util::Counter& misses = registry.counter("cache.misses");
  util::Counter& stores = registry.counter("cache.stores");
  util::Counter& bytes_loaded = registry.counter("cache.bytes_loaded");
  util::Counter& bytes_stored = registry.counter("cache.bytes_stored");
  util::Counter& corrupt_records = registry.counter("cache.corrupt_records");
  util::Counter& version_skew = registry.counter("cache.version_skew");
  util::Counter& type_mismatch = registry.counter("cache.type_mismatch");
  util::Counter& io_errors = registry.counter("cache.io_errors");
  util::Counter& evicted_memory = registry.counter("cache.evicted_memory");
  util::Counter& evicted_budget = registry.counter("cache.evicted_budget");
  util::Counter& evicted_orphan = registry.counter("cache.evicted_orphan");
  util::Counter& evicted_bytes = registry.counter("cache.evicted_bytes");
  util::DoubleCounter& lookup_seconds = registry.double_counter("cache.lookup_seconds");
  util::DoubleCounter& store_seconds = registry.double_counter("cache.store_seconds");
  std::atomic<std::uint64_t> tmp_counter{0};

  Shard& shard(const util::Digest128& key) { return shards[key.lo % kShards]; }

  CacheConfig snapshot() const OPM_EXCLUDES(config_mutex) {
    util::MutexLock lock(config_mutex);
    return config;
  }

  fs::path record_path(const CacheConfig& cfg, const util::Digest128& key) const {
    return fs::path(cfg.dir) / (key.hex() + ".opmrec");
  }

  // ------------------------------------------------------------ memory tier --

  std::optional<std::vector<std::byte>> memory_find(const util::Digest128& key,
                                                    std::size_t elem_size) {
    Shard& s = shard(key);
    util::MutexLock lock(s.mutex);
    auto it = s.index.find(key);
    if (it == s.index.end()) return std::nullopt;
    if (it->second->elem_size != elem_size) {
      // Same key, different element size: practically impossible without a
      // hash collision or a caller bug; treat as absent rather than serve
      // wrongly-typed bytes.
      return std::nullopt;
    }
    s.lru.splice(s.lru.begin(), s.lru, it->second);  // touch
    return it->second->payload;
  }

  void memory_store(const util::Digest128& key, std::size_t elem_size,
                    std::vector<std::byte> payload) {
    const std::size_t cap = per_shard_cap.load(std::memory_order_relaxed);
    Shard& s = shard(key);
    util::MutexLock lock(s.mutex);
    auto it = s.index.find(key);
    if (it != s.index.end()) {
      it->second->elem_size = elem_size;
      it->second->payload = std::move(payload);
      s.lru.splice(s.lru.begin(), s.lru, it->second);
      return;
    }
    s.lru.push_front(Entry{key, elem_size, std::move(payload)});
    s.index.emplace(key, s.lru.begin());
    while (s.lru.size() > cap) {
      s.index.erase(s.lru.back().key);
      s.lru.pop_back();
      evicted_memory.add(1);
    }
  }

  // -------------------------------------------------------------- disk tier --

  ReadOutcome disk_read(const CacheConfig& cfg, const util::Digest128& key,
                        std::size_t elem_size, std::vector<std::byte>& out) {
    const fs::path path = record_path(cfg, key);
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::error_code ec;
      return fs::exists(path, ec) ? ReadOutcome::kIoError : ReadOutcome::kAbsent;
    }
    unsigned char header[kHeaderBytes];
    if (!in.read(reinterpret_cast<char*>(header), kHeaderBytes))
      return ReadOutcome::kCorrupt;  // shorter than a header: truncated
    if (std::memcmp(header, kMagic, 4) != 0) return ReadOutcome::kCorrupt;
    if (get_u32(header + 4) != kResultCacheVersion) return ReadOutcome::kVersionSkew;
    if (get_u64(header + 8) != key.hi || get_u64(header + 16) != key.lo)
      return ReadOutcome::kCorrupt;
    if (get_u64(header + 24) != elem_size) return ReadOutcome::kTypeMismatch;
    const std::uint64_t payload_len = get_u64(header + 32);
    const std::uint64_t checksum = get_u64(header + 40);
    if (elem_size == 0 || payload_len % elem_size != 0) return ReadOutcome::kCorrupt;
    // Bound the read by the actual file size so a header lying about its
    // length cannot make us allocate absurd buffers.
    std::error_code ec;
    const auto file_size = fs::file_size(path, ec);
    if (ec || file_size != kHeaderBytes + payload_len) return ReadOutcome::kCorrupt;
    std::vector<std::byte> payload(payload_len);
    if (payload_len > 0 &&
        !in.read(reinterpret_cast<char*>(payload.data()),
                 static_cast<std::streamsize>(payload_len)))
      return ReadOutcome::kCorrupt;
    if (payload_checksum(payload) != checksum) return ReadOutcome::kCorrupt;
    // LRU-by-mtime: a disk hit refreshes its record so budget pruning
    // deletes cold records first. Best effort — a read-only cache dir
    // still serves hits.
    fs::last_write_time(path, fs::file_time_type::clock::now(), ec);
    out = std::move(payload);
    return ReadOutcome::kOk;
  }

  bool disk_write(const CacheConfig& cfg, const util::Digest128& key, std::size_t elem_size,
                  const std::vector<std::byte>& payload) {
    std::error_code ec;
    fs::create_directories(cfg.dir, ec);
    if (ec) return false;
    const fs::path final_path = record_path(cfg, key);
    // Integer-only formatting of a scratch name, never a serialized
    // result value, so the canonical-%a rule does not apply here.
    const std::string tmp_seq =
        std::to_string(tmp_counter.fetch_add(1, std::memory_order_relaxed));  // opm-lint: allow(float-print)
    const fs::path tmp_path = fs::path(cfg.dir) / (".tmp-" + key.hex() + "-" + tmp_seq);
    {
      std::ofstream outf(tmp_path, std::ios::binary | std::ios::trunc);
      if (!outf) return false;
      unsigned char header[kHeaderBytes];
      std::memcpy(header, kMagic, 4);
      put_u32(header + 4, kResultCacheVersion);
      put_u64(header + 8, key.hi);
      put_u64(header + 16, key.lo);
      put_u64(header + 24, elem_size);
      put_u64(header + 32, payload.size());
      put_u64(header + 40, payload_checksum(payload));
      outf.write(reinterpret_cast<const char*>(header), kHeaderBytes);
      if (!payload.empty())
        outf.write(reinterpret_cast<const char*>(payload.data()),
                   static_cast<std::streamsize>(payload.size()));
      outf.flush();
      if (!outf) {
        outf.close();
        fs::remove(tmp_path, ec);
        return false;
      }
    }
    // Atomic publish: readers see either no record or a complete one.
    fs::rename(tmp_path, final_path, ec);
    if (ec) {
      fs::remove(tmp_path, ec);
      return false;
    }
    if (cfg.max_disk_bytes > 0) prune_disk(cfg);
    return true;
  }

  util::Mutex prune_mutex;  // one pruner at a time within this process

  /// Walks the cache dir and deletes (a) .tmp- scratch files older than
  /// five minutes — leftovers from crashed writers, never a live write —
  /// and (b) the oldest-mtime records until the directory fits
  /// max_disk_bytes. Runs after every publishing store; store frequency
  /// is bounded by recompute cost, so the O(records) scan stays cheap
  /// relative to the work that triggered it.
  void prune_disk(const CacheConfig& cfg) OPM_EXCLUDES(prune_mutex) {
    util::MutexLock lock(prune_mutex);
    struct File {
      fs::path path;
      fs::file_time_type mtime;
      std::uintmax_t size = 0;
    };
    std::vector<File> records;
    std::uintmax_t total = 0;
    std::error_code ec;
    const auto now = fs::file_time_type::clock::now();
    for (fs::directory_iterator it(cfg.dir, ec), end; !ec && it != end; it.increment(ec)) {
      const fs::path path = it->path();
      const std::string name = path.filename().string();
      std::error_code fec;
      if (name.rfind(".tmp-", 0) == 0) {
        const auto mtime = fs::last_write_time(path, fec);
        if (!fec && now - mtime > std::chrono::minutes(5)) {
          const auto size = fs::file_size(path, fec);
          if (fs::remove(path, fec) && !fec) {
            evicted_orphan.add(1);
            evicted_bytes.add(fec ? 0 : static_cast<std::uint64_t>(size));
          }
        }
        continue;
      }
      if (name.size() < 8 || name.compare(name.size() - 7, 7, ".opmrec") != 0) continue;
      File f;
      f.path = path;
      f.size = it->file_size(fec);
      if (fec) continue;
      f.mtime = fs::last_write_time(path, fec);
      if (fec) continue;
      total += f.size;
      records.push_back(std::move(f));
    }
    if (total <= cfg.max_disk_bytes) return;
    std::sort(records.begin(), records.end(),
              [](const File& a, const File& b) { return a.mtime < b.mtime; });
    for (const File& f : records) {
      if (total <= cfg.max_disk_bytes) break;
      std::error_code fec;
      if (!fs::remove(f.path, fec) || fec) continue;  // racing pruner got it first
      total -= f.size;
      evicted_budget.add(1);
      evicted_bytes.add(f.size);
    }
  }
};

ResultCache::ResultCache() : impl_(new Impl) {}
ResultCache::~ResultCache() { delete impl_; }

ResultCache& ResultCache::instance() {
  // Magic-static: the shard table is constructed exactly once, with every
  // concurrent first caller blocked until it is ready.
  static ResultCache cache;
  return cache;
}

void ResultCache::configure(const CacheConfig& config) {
  {
    util::MutexLock lock(impl_->config_mutex);
    impl_->config = config;
  }
  impl_->enabled.store(config.enabled, std::memory_order_release);
  impl_->per_shard_cap.store(
      std::max<std::size_t>(1, config.max_entries / Impl::kShards),
      std::memory_order_relaxed);
  clear_memory();
}

CacheConfig ResultCache::config() const { return impl_->snapshot(); }

bool ResultCache::enabled() const {
  return impl_->enabled.load(std::memory_order_acquire);
}

CacheStats ResultCache::stats() const {
  CacheStats s;
  s.memory_hits = impl_->memory_hits.value();
  s.disk_hits = impl_->disk_hits.value();
  s.misses = impl_->misses.value();
  s.stores = impl_->stores.value();
  s.bytes_loaded = impl_->bytes_loaded.value();
  s.bytes_stored = impl_->bytes_stored.value();
  s.corrupt_records = impl_->corrupt_records.value();
  s.version_skew = impl_->version_skew.value();
  s.type_mismatch = impl_->type_mismatch.value();
  s.io_errors = impl_->io_errors.value();
  s.evicted_memory = impl_->evicted_memory.value();
  s.evicted_budget = impl_->evicted_budget.value();
  s.evicted_orphan = impl_->evicted_orphan.value();
  s.evicted_bytes = impl_->evicted_bytes.value();
  s.lookup_seconds = impl_->lookup_seconds.value();
  s.store_seconds = impl_->store_seconds.value();
  return s;
}

void ResultCache::reset_stats() {
  impl_->registry.reset("cache.");
}

void ResultCache::clear_memory() {
  for (auto& s : impl_->shards) {
    util::MutexLock lock(s.mutex);
    s.lru.clear();
    s.index.clear();
  }
}

std::optional<std::vector<std::byte>> ResultCache::find_bytes(const util::Digest128& key,
                                                              std::size_t elem_size,
                                                              CacheProbe* probe) {
  if (!enabled()) {
    if (probe) probe->source = "off";
    return std::nullopt;
  }
  const auto t0 = Clock::now();
  CacheProbe local;
  CacheProbe& p = probe ? *probe : local;

  std::optional<std::vector<std::byte>> result;
  if (auto mem = impl_->memory_find(key, elem_size)) {
    impl_->memory_hits.add(1);
    p.hit = true;
    p.source = "memory";
    p.bytes_loaded = mem->size();
    result = std::move(mem);
  } else {
    const CacheConfig cfg = impl_->snapshot();
    ReadOutcome outcome = ReadOutcome::kAbsent;
    std::vector<std::byte> payload;
    if (cfg.disk) outcome = impl_->disk_read(cfg, key, elem_size, payload);
    switch (outcome) {
      case ReadOutcome::kOk:
        impl_->disk_hits.add(1);
        p.hit = true;
        p.source = "disk";
        p.bytes_loaded = payload.size();
        impl_->memory_store(key, elem_size, payload);  // promote
        result = std::move(payload);
        break;
      case ReadOutcome::kAbsent:
        p.source = "cold";
        break;
      case ReadOutcome::kCorrupt:
        impl_->corrupt_records.add(1);
        p.source = "corrupt";
        break;
      case ReadOutcome::kVersionSkew:
        impl_->version_skew.add(1);
        p.source = "version-skew";
        break;
      case ReadOutcome::kTypeMismatch:
        impl_->type_mismatch.add(1);
        p.source = "type-mismatch";
        break;
      case ReadOutcome::kIoError:
        impl_->io_errors.add(1);
        p.source = "io-error";
        break;
    }
    if (!p.hit) impl_->misses.add(1);
  }

  p.lookup_seconds = seconds_since(t0);
  impl_->lookup_seconds.add(p.lookup_seconds);
  if (p.hit)
    impl_->bytes_loaded.add(p.bytes_loaded);
  return result;
}

bool ResultCache::store_bytes(const util::Digest128& key, std::size_t elem_size,
                              std::vector<std::byte> payload, CacheProbe* probe) {
  if (!enabled()) return false;
  const auto t0 = Clock::now();
  const CacheConfig cfg = impl_->snapshot();
  const std::size_t payload_bytes = payload.size();
  bool disk_ok = true;
  if (cfg.disk) {
    disk_ok = impl_->disk_write(cfg, key, elem_size, payload);
    if (disk_ok)
      impl_->bytes_stored.add(payload_bytes);
    else
      impl_->io_errors.add(1);
  }
  impl_->memory_store(key, elem_size, std::move(payload));
  impl_->stores.add(1);
  const double dt = seconds_since(t0);
  impl_->store_seconds.add(dt);
  if (probe) {
    probe->store_seconds = dt;
    probe->bytes_stored = disk_ok && cfg.disk ? payload_bytes : 0;
  }
  return true;
}

void configure_result_cache(const CacheConfig& config) {
  ResultCache::instance().configure(config);
}

CacheConfig result_cache_config() { return ResultCache::instance().config(); }

CacheStats result_cache_stats() { return ResultCache::instance().stats(); }

void reset_result_cache_stats() { ResultCache::instance().reset_stats(); }

std::string cache_totals_json() {
  const CacheStats c = result_cache_stats();
  std::ostringstream os;
  os << "{\"cache_totals\":{\"memory_hits\":" << c.memory_hits
     << ",\"disk_hits\":" << c.disk_hits << ",\"misses\":" << c.misses
     << ",\"stores\":" << c.stores << ",\"bytes_loaded\":" << c.bytes_loaded
     << ",\"bytes_stored\":" << c.bytes_stored << ",\"faults\":" << c.faults()
     << ",\"lookup_s\":" << c.lookup_seconds << ",\"store_s\":" << c.store_seconds
     << "}}";
  return os.str();
}

}  // namespace opm::core
