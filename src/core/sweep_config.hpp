#pragma once

#include <cstddef>

#include "core/result_cache.hpp"
#include "sim/window_sampler.hpp"

/// The consolidated runtime-knob surface for the sweep engine.
///
/// Before this existed, each harness touched core::set_sweep_workers() ad
/// hoc and nothing configured the result cache. Now a harness resolves one
/// SweepConfig — defaults, overlaid by environment, overlaid by CLI (see
/// bench::init) — and applies it once:
///
///   knob                 CLI                    environment
///   ------------------   --------------------   ------------------------
///   workers              --sweep-workers=N      OPM_SWEEP_WORKERS=N
///   cache.dir            --cache-dir=PATH       OPM_CACHE_DIR=PATH
///   cache.enabled        --no-cache             OPM_NO_CACHE=1
///   cache.max_disk_bytes --cache-max-bytes=N    OPM_CACHE_MAX_BYTES=N
///   telemetry            --no-sweep-stats       OPM_SWEEP_STATS=0
///   sampling             --sample=off|fast      OPM_SAMPLE=off|fast
///
/// Tests and libraries that need one specific knob can still call
/// set_sweep_workers() / configure_result_cache() directly.
namespace opm::core {

struct SweepConfig {
  std::size_t workers = 0;  ///< sweep worker count (0 = serial inline)
  bool telemetry = true;    ///< bench harnesses emit SweepStats blocks
  CacheConfig cache;        ///< result-cache tiers (core/result_cache.hpp)
  /// Trace-simulation sampling (sim/window_sampler.hpp). kOff = every
  /// simulation is exact; kFast = sampling-aware consumers (the advise
  /// probe) run a WindowSampler and surface sampled:true + the error
  /// bound. Sampled and exact results are keyed separately in the
  /// ResultCache, so flipping this never aliases cached payloads.
  sim::SamplingMode sampling = sim::SamplingMode::kOff;
};

/// Bench-harness defaults: hardware-concurrency workers, telemetry on, and
/// the cache enabled with both tiers (disk under ".opm-cache"). Note this
/// differs from the library default — a process that never applies a
/// SweepConfig runs with the cache disabled.
SweepConfig default_sweep_config();

/// Overlays OPM_SWEEP_WORKERS / OPM_CACHE_DIR / OPM_CACHE_MAX_BYTES /
/// OPM_NO_CACHE / OPM_SWEEP_STATS onto `base`. Unset or unparsable
/// variables leave the base value untouched.
SweepConfig apply_env(SweepConfig base);

/// The full defaults → environment → CLI resolution (the table above) in
/// one call, without applying it. Shared by bench::init and opm_serve so
/// both front ends accept the same knobs.
SweepConfig resolve_sweep_config(int argc, const char* const* argv);

/// Applies the config process-wide: set_sweep_workers(), the result-cache
/// configuration, and the telemetry switch.
void apply_sweep_config(const SweepConfig& config);

/// The telemetry switch applied last (default: on).
void set_sweep_telemetry(bool enabled);
bool sweep_telemetry();

}  // namespace opm::core
