#pragma once

#include <string>
#include <vector>

#include "kernels/spec.hpp"
#include "sim/platform.hpp"

/// Roofline model (Williams et al.) for OPM-equipped platforms — the
/// engine behind the paper's Figure 5.
namespace opm::core {

/// Attainable performance at arithmetic intensity `ai` (flop/byte) under a
/// compute ceiling `peak_flops` and memory ceiling `bandwidth` (bytes/s).
/// Guard rails: non-positive intensity, peak, or bandwidth clamp to zero —
/// a degenerate roof yields zero attainable flops, never a negative or
/// unbounded value.
double roofline_attainable(double ai, double peak_flops, double bandwidth);

/// One kernel placed on a platform's roofline.
struct RooflinePlacement {
  std::string kernel;
  double intensity = 0.0;        ///< flop/byte at the Figure 5 problem size
  double with_opm_gflops = 0.0;  ///< ceiling using the OPM bandwidth
  double ddr_only_gflops = 0.0;  ///< ceiling using the DDR bandwidth
};

/// Roofline description of one platform: both memory ceilings plus every
/// kernel's placement at the paper's Figure 5 problem size
/// (n = 1024, nnz = 1024, M = 32).
struct RooflineFigure {
  std::string platform;
  double dp_peak_flops = 0.0;
  double sp_peak_flops = 0.0;
  double opm_bandwidth = 0.0;  ///< eDRAM / MCDRAM bytes/s
  double ddr_bandwidth = 0.0;
  std::vector<RooflinePlacement> placements;

  /// The intensity where the OPM memory roof meets the DP compute roof.
  double ridge_point_opm() const;
  double ridge_point_ddr() const;
};

/// Builds the figure for a platform. `platform` must be an OPM-enabled
/// configuration (eDRAM on / any MCDRAM mode); the DDR ceiling comes from
/// its DDR device.
RooflineFigure build_roofline(const sim::Platform& platform);

/// One kernel placed on the roofline from *measured* traffic rather than
/// the static Table 2 byte formulas: `measured_bytes` is what the cache
/// simulator actually saw leave for memory, so the intensity reflects
/// reuse the caches captured.
struct MeasuredPlacement {
  std::string kernel;
  double flops = 0.0;           ///< useful flops of the measured run
  double measured_bytes = 0.0;  ///< bytes that reached the backing devices
  double intensity = 0.0;       ///< flops / measured_bytes (0 when no traffic)
  double opm_attainable_gflops = 0.0;
  double ddr_attainable_gflops = 0.0;
  bool memory_bound_opm = false;  ///< intensity below the OPM ridge point
  bool memory_bound_ddr = false;  ///< intensity below the DDR ridge point
};

/// Places measured traffic on a platform's roofline. Guard rails: zero
/// measured bytes means the run never hit memory — intensity stays 0, the
/// kernel classifies compute-bound, and the attainable ceilings are the
/// compute peak; degenerate (zero-bandwidth / zero-peak) figures yield
/// zero attainable flops and a not-memory-bound classification.
MeasuredPlacement place_measured(const RooflineFigure& figure, const std::string& kernel,
                                 double flops, double measured_bytes);

/// One memory roof of the cache-aware roofline (CARM) extension: every
/// hierarchy level contributes a diagonal, not just OPM and DDR.
struct CarmRoof {
  std::string name;
  double bandwidth = 0.0;  ///< bytes/s
  /// Intensity where this roof meets the DP compute ceiling (flop/byte).
  double ridge_point = 0.0;
};

/// All memory roofs of a platform, from L1 down to DDR, in hierarchy
/// order (bandwidths non-increasing). The classic roofline (Figure 5)
/// keeps only the last two; the CARM view explains where the cache peaks
/// of the Stepping Model come from — each peak runs along one roof.
std::vector<CarmRoof> cache_aware_roofs(const sim::Platform& platform);

}  // namespace opm::core
