#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "util/fingerprint.hpp"

/// Single-flight execution, the cousin of ResultCache for *in-flight*
/// work.
///
/// The result cache deduplicates a computation against the **past**: an
/// identical request that already completed is served from the near tier.
/// SingleFlight deduplicates against the **present**: when several callers
/// ask for the same fingerprint while the first one is still computing,
/// exactly one of them (the leader) runs the computation and every
/// concurrent caller (the followers) blocks until the leader publishes,
/// then shares the same immutable payload. The sweep service puts this in
/// front of the cache, so a duplicate-heavy request burst costs one sweep
/// no matter how many clients raced.
///
/// Usage:
///
///   bool leader = false;
///   auto flight = flights.try_begin(key, &leader);
///   if (leader) {
///     try { flights.complete(flight, compute()); }
///     catch (...) { flights.fail(flight); throw; }
///   } else {
///     payload = flights.share(flight);   // nullptr if the leader failed
///   }
///
/// A failed flight poisons nobody: followers get nullptr and decide for
/// themselves (the dispatcher returns a structured "internal" error), and
/// the key is immediately reclaimable — the next try_begin starts a fresh
/// flight.
namespace opm::core {

class SingleFlight {
 public:
  /// Published results are immutable and shared by every waiter.
  using Payload = std::shared_ptr<const std::string>;

  struct Flight;  // opaque flight handle

  SingleFlight();
  ~SingleFlight();
  SingleFlight(const SingleFlight&) = delete;
  SingleFlight& operator=(const SingleFlight&) = delete;

  /// Claims or joins the flight for `key`. Sets *leader = true when the
  /// caller is first and must finish the flight with complete() or
  /// fail(); false means a leader is already computing — call share().
  std::shared_ptr<Flight> try_begin(const util::Digest128& key, bool* leader);

  /// Follower side: blocks until the flight's leader publishes. Returns
  /// the shared payload, or nullptr when the leader failed.
  Payload share(const std::shared_ptr<Flight>& flight);

  /// Leader side: publishes `payload`, wakes every follower, and retires
  /// the key so the next identical request starts a new flight (normally
  /// it will hit the result cache instead).
  void complete(const std::shared_ptr<Flight>& flight, Payload payload);

  /// Leader side: abandons the flight; followers receive nullptr.
  void fail(const std::shared_ptr<Flight>& flight);

  struct Stats {
    std::uint64_t flights = 0;    ///< leader claims (distinct computations begun)
    std::uint64_t coalesced = 0;  ///< followers that joined an in-flight leader
    std::uint64_t failures = 0;   ///< flights retired through fail()
  };
  Stats stats() const;

  /// Flights currently in the air (leader has not completed/failed yet).
  std::size_t in_flight() const;

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace opm::core
