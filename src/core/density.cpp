#include "core/density.hpp"

#include <algorithm>

#include "kernels/gemm.hpp"
#include "util/rng.hpp"

namespace opm::core {

DensityResult gemm_density(const sim::Platform& platform, std::size_t count,
                           std::uint64_t seed) {
  DensityResult out;
  out.samples_gflops.reserve(count);
  util::Xoshiro256 rng(seed);
  for (std::size_t i = 0; i < count; ++i) {
    // Appendix A.2.1 ranges: n in {256 .. 16128 step 512},
    // nb in {128 .. 4096 step 128}.
    const double n = 256.0 + 512.0 * static_cast<double>(rng.bounded(32));
    const double nb = 128.0 + 128.0 * static_cast<double>(rng.bounded(32));
    const kernels::LocalityModel model = kernels::gemm_model(platform, n, nb);
    const kernels::Prediction pred = kernels::predict(platform, model);
    out.samples_gflops.push_back(pred.gflops);
  }
  out.best_gflops =
      *std::max_element(out.samples_gflops.begin(), out.samples_gflops.end());
  std::size_t near = 0;
  for (double g : out.samples_gflops)
    if (g >= 0.9 * out.best_gflops) ++near;
  out.near_peak_fraction = static_cast<double>(near) / static_cast<double>(count);
  out.density = util::kernel_density(out.samples_gflops, 128);
  return out;
}

}  // namespace opm::core
