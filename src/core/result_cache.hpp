#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <type_traits>
#include <vector>

#include "util/fingerprint.hpp"

/// Content-addressed memoization of sweep results.
///
/// Every sweep in core/experiment.hpp is a pure function of (platform
/// spec, kernel id, canonical request struct, suite descriptors, model
/// version). ResultCache exploits that: results are stored under a 128-bit
/// fingerprint of exactly those inputs, in two tiers —
///
///   * a thread-safe, sharded, in-memory LRU (fast tier), and
///   * an optional on-disk tier of versioned binary records under the
///     configured cache directory (default ".opm-cache/", overridable via
///     OPM_CACHE_DIR / --cache-dir), which makes warm starts survive
///     process restarts.
///
/// This mirrors how the OPM literature treats a fast memory tier as a
/// transparent cache over slow recomputation: identical query, served from
/// the near tier, bit-identical result. Determinism is the contract — a
/// hit returns exactly the bytes a cold compute would produce.
///
/// Robustness is equally part of the contract: a missing, truncated,
/// corrupted, version-skewed, or permission-denied cache file must never
/// change results or crash. Every such fault degrades to a miss (the
/// caller recomputes) and is counted, by reason, in CacheStats.
///
/// The cache ships disabled; bench::init() / core::apply_sweep_config()
/// enable it for the bench harnesses. Tier-1 tests run with it off so they
/// keep exercising the compute path (and the sanitizer CI pins that down).
namespace opm::core {

/// Bumping this invalidates every existing record (it is folded into both
/// the key derivation and the on-disk header). Bump whenever the meaning
/// of cached payloads changes: model recalibrations that are NOT visible
/// in the hashed inputs, layout changes of the result structs, etc.
inline constexpr std::uint32_t kResultCacheVersion = 1;

struct CacheConfig {
  bool enabled = false;        ///< master switch; disabled = every call no-ops
  bool disk = true;            ///< persist records under `dir` (when enabled)
  std::string dir = ".opm-cache";
  std::size_t max_entries = 4096;  ///< in-memory LRU capacity (entries, all shards)
  /// Byte budget for the disk tier (payload + header bytes of .opmrec
  /// records; 0 = unlimited). When a store pushes the directory over
  /// budget, the oldest records by mtime are deleted until it fits —
  /// LRU-by-mtime, because disk hits touch their record's mtime. Several
  /// processes sharing one cache dir (the sharded serve tier's L2) each
  /// prune safely: deleting a record another process is reading degrades
  /// to a miss there, never to corruption.
  std::size_t max_disk_bytes = 0;
};

/// Process-wide counters, aggregated across every lookup/store.
struct CacheStats {
  std::size_t memory_hits = 0;
  std::size_t disk_hits = 0;       ///< served from disk (and promoted to memory)
  std::size_t misses = 0;          ///< absent in both tiers
  std::size_t stores = 0;          ///< store() calls that cached a new payload
  std::size_t bytes_loaded = 0;    ///< payload bytes served (both tiers)
  std::size_t bytes_stored = 0;    ///< payload bytes written to the disk tier
  std::size_t corrupt_records = 0; ///< bad magic/length/key/checksum → recompute
  std::size_t version_skew = 0;    ///< record from another cache version → recompute
  std::size_t type_mismatch = 0;   ///< element size differs from the request → recompute
  std::size_t io_errors = 0;       ///< unreadable/unwritable files or dirs → recompute
  // Evictions, by reason (also in the metrics registry as cache.evicted_*):
  std::size_t evicted_memory = 0;  ///< memory LRU entries popped at capacity
  std::size_t evicted_budget = 0;  ///< disk records deleted by max_disk_bytes pruning
  std::size_t evicted_orphan = 0;  ///< stale .tmp- files from crashed writers
  std::size_t evicted_bytes = 0;   ///< disk bytes reclaimed by pruning (both reasons)
  double lookup_seconds = 0.0;
  double store_seconds = 0.0;

  std::size_t hits() const { return memory_hits + disk_hits; }
  std::size_t faults() const {
    return corrupt_records + version_skew + type_mismatch + io_errors;
  }
};

/// Outcome of one consultation (lookup and, on miss, the follow-up store).
/// The sweep layer folds this into SweepStats telemetry.
struct CacheProbe {
  bool hit = false;
  /// "memory", "disk", or the miss/fault reason ("cold", "corrupt",
  /// "version-skew", "type-mismatch", "io-error").
  const char* source = "cold";
  std::size_t bytes_loaded = 0;
  std::size_t bytes_stored = 0;
  double lookup_seconds = 0.0;
  double store_seconds = 0.0;
};

class ResultCache {
 public:
  /// The process-wide instance (thread-safe lazy construction; the shard
  /// table is built exactly once, before any lookup can race on it).
  static ResultCache& instance();

  /// Replaces the configuration and drops the in-memory tier (disk records
  /// are left alone: they are re-validated on next read). Not a hot-path
  /// call; safe to invoke concurrently with lookups.
  void configure(const CacheConfig& config);
  CacheConfig config() const;
  bool enabled() const;

  CacheStats stats() const;
  void reset_stats();

  /// Drops every in-memory entry (disk tier untouched). Used by the
  /// cold/warm benches to measure the disk tier in isolation.
  void clear_memory();

  /// Looks `key` up in memory, then disk. Returns the payload on a hit
  /// (bit-identical to what was stored) or nullopt on any miss or fault.
  template <typename T>
  std::optional<std::vector<T>> find(const util::Digest128& key, CacheProbe* probe = nullptr) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "cache payloads are raw element bytes");
    auto bytes = find_bytes(key, sizeof(T), probe);
    if (!bytes) return std::nullopt;
    std::vector<T> out(bytes->size() / sizeof(T));
    if (!out.empty()) std::memcpy(out.data(), bytes->data(), bytes->size());
    return out;
  }

  /// Stores `value` in both tiers. Disk failures (unwritable directory,
  /// full disk, ...) are absorbed: the in-memory entry still lands and the
  /// fault is counted. Returns false only when the cache is disabled.
  template <typename T>
  bool store(const util::Digest128& key, const std::vector<T>& value,
             CacheProbe* probe = nullptr) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "cache payloads are raw element bytes");
    std::vector<std::byte> bytes(value.size() * sizeof(T));
    if (!bytes.empty()) std::memcpy(bytes.data(), value.data(), bytes.size());
    return store_bytes(key, sizeof(T), std::move(bytes), probe);
  }

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

 private:
  ResultCache();
  ~ResultCache();

  std::optional<std::vector<std::byte>> find_bytes(const util::Digest128& key,
                                                   std::size_t elem_size, CacheProbe* probe);
  bool store_bytes(const util::Digest128& key, std::size_t elem_size,
                   std::vector<std::byte> payload, CacheProbe* probe);

  struct Impl;
  Impl* impl_;
};

/// Convenience accessors mirroring ResultCache::instance() for call sites
/// that only flip configuration (bench::init, tests).
void configure_result_cache(const CacheConfig& config);
CacheConfig result_cache_config();
CacheStats result_cache_stats();
void reset_result_cache_stats();

/// The process-wide cache totals as one JSON line payload:
/// {"cache_totals":{"memory_hits":N,...}}. The counters live in the
/// util::MetricsRegistry (names "cache.*"), so the bench harness stats
/// block and the opm_serve "stats" request render the same numbers through
/// this one code path.
std::string cache_totals_json();

}  // namespace opm::core
