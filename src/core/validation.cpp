#include "core/validation.hpp"

#include <algorithm>
#include <sstream>

#include "util/format.hpp"

namespace opm::core {

ValidationReport validate_model(const trace::ReuseDistanceAnalyzer& measured,
                                const kernels::LocalityModel& model,
                                const sim::Platform& platform, double iterations) {
  ValidationReport out;
  // The measured curve never falls below the compulsory (cold) traffic —
  // every distinct line misses at least once — while the steady-state
  // models amortize cold misses over many iterations. Clamp both sides at
  // the compulsory floor so the comparison targets the capacity-dependent
  // component (rows where that floor dominates read as ratio 1).
  const double compulsory =
      static_cast<double>(measured.distinct_lines()) * measured.line_size();
  double cumulative = 0.0;
  for (const auto& tier : platform.tiers) {
    cumulative += static_cast<double>(tier.geometry.capacity);
    ValidationRow row;
    row.boundary = tier.geometry.name;
    row.capacity_bytes = cumulative;
    row.measured_bytes = static_cast<double>(
        measured.miss_bytes(static_cast<std::uint64_t>(cumulative)));
    row.modeled_bytes = model.miss_bytes(cumulative) * iterations;
    const double meas = std::max(row.measured_bytes, compulsory);
    const double mod = std::max(row.modeled_bytes, compulsory);
    if (meas > 0.0 && mod > 0.0)
      row.ratio = mod / meas;
    else
      row.ratio = 1.0;  // empty trace: nothing to compare
    out.rows.push_back(row);
    out.worst_factor = std::max(out.worst_factor, std::max(row.ratio, 1.0 / row.ratio));
  }
  return out;
}

std::string format_report(const ValidationReport& report) {
  std::ostringstream os;
  os << util::pad("boundary", 12) << util::pad("capacity", 12) << util::pad("measured", 14)
     << util::pad("modeled", 14) << util::pad("model/meas", 12) << "\n";
  for (const auto& row : report.rows) {
    os << util::pad(row.boundary, 12)
       << util::pad(util::format_bytes(static_cast<std::uint64_t>(row.capacity_bytes)), 12)
       << util::pad(util::format_bytes(static_cast<std::uint64_t>(row.measured_bytes)), 14)
       << util::pad(util::format_bytes(static_cast<std::uint64_t>(row.modeled_bytes)), 14)
       << util::pad(row.ratio > 0.0 ? util::format_fixed(row.ratio, 2) : "n/a", 12) << "\n";
  }
  os << "worst multiplicative error: " << util::format_fixed(report.worst_factor, 2) << "x\n";
  return os.str();
}

}  // namespace opm::core
