#pragma once

#include <cstdint>
#include <vector>

#include "sim/platform.hpp"
#include "util/stats.hpp"

/// Achievable-throughput probability density — the paper's Figure 1.
///
/// The paper samples 1024 (problem size, tiling size) GEMM configurations
/// and plots the density of achieved GFlop/s with and without eDRAM: the
/// OPM shifts the whole distribution toward the peak (more less-optimized
/// configurations reach near-peak performance) without moving the peak
/// itself much.
namespace opm::core {

struct DensityResult {
  std::vector<double> samples_gflops;  ///< one per sampled configuration
  util::DensityEstimate density;       ///< Gaussian KDE over the samples
  double best_gflops = 0.0;
  /// Fraction of samples reaching >= 90% of the best sample — the paper's
  /// "chance to reach near-peak performance".
  double near_peak_fraction = 0.0;
};

/// Samples `count` GEMM (n, nb) configurations uniformly from the paper's
/// appendix ranges (n in 256..16128, nb in 128..4096) and predicts each
/// configuration's throughput on `platform`.
DensityResult gemm_density(const sim::Platform& platform, std::size_t count,
                           std::uint64_t seed);

}  // namespace opm::core
