#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <type_traits>
#include <vector>

#include "util/thread_pool.hpp"

/// The parallel sweep engine.
///
/// Every figure/table sweep in core/experiment.hpp fans its independent
/// model evaluations out over a process-wide work-stealing pool
/// (util::ThreadPool) and writes each result by index, so the output of
/// any sweep is **bit-identical for every worker count** — the serial
/// path is simply workers == 0. The worker knob is process-wide:
///
///   core::set_sweep_workers(0);   // serial (deterministic unit tests)
///   core::set_sweep_workers(64);  // KNL-style massive multithreading
///
/// Default: hardware concurrency. Each top-level sweep records a
/// SweepStats sample (tasks, steals, per-worker busy time, wall time)
/// that the bench harnesses drain and print as CSV/JSON, which makes the
/// perf trajectory of the sweep hot path measurable run over run.
namespace opm::core {

/// Observability record for one top-level sweep. Nested sweeps (a sweep
/// launched from inside another sweep's task) execute through the same
/// pool but are folded into the enclosing record.
struct SweepStats {
  std::string name;           ///< e.g. "sweep_sparse:SpMV"
  std::size_t workers = 0;    ///< pool size used (0 = serial inline)
  std::size_t items = 0;      ///< sweep points evaluated
  std::size_t tasks = 0;      ///< scheduler chunk tasks executed
  std::size_t steals = 0;     ///< tasks that migrated between workers
  double wall_seconds = 0.0;  ///< fork-to-join wall time
  double busy_seconds = 0.0;  ///< total exclusive task-body time across workers
  /// Busy seconds per worker (index = worker id; last entry aggregates
  /// helping non-worker threads). Empty for serial sweeps.
  std::vector<double> worker_busy_seconds;

  // Result-cache telemetry (core/result_cache.hpp), filled when the sweep
  // consulted the cache. A hit records a synthetic entry (workers = 0,
  // tasks = 0, wall = lookup latency); a miss annotates the computed
  // sweep's own record with the lookup + store accounting.
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  std::size_t cache_bytes_loaded = 0;
  std::size_t cache_bytes_stored = 0;
  double cache_seconds = 0.0;  ///< cache lookup + store time
  std::string cache_source;    ///< "", "memory", "disk", or the miss reason

  /// Simulator throughput: line-granular accesses the trace-driven
  /// MemorySystem walked during this sweep (delta of the process-wide
  /// "sim.lines_simulated" metric; 0 for purely analytical sweeps).
  std::uint64_t sim_lines = 0;

  /// Sampled-simulation telemetry (sim/window_sampler.hpp): true when any
  /// WindowSampler finalized during this sweep, with the summed per-run
  /// error bounds (delta of "sim.sampling_rel_error" — a sum of maxima,
  /// so it upper-bounds the worst single run). False/0 for exact sweeps.
  bool sampled = false;
  double max_rel_error = 0.0;

  /// busy_seconds approximates the serial wall time of the same sweep, so
  /// busy/wall estimates the speedup actually delivered by the pool.
  double speedup_estimate() const {
    return wall_seconds > 0.0 ? busy_seconds / wall_seconds : 1.0;
  }

  /// Simulated lines per wall second (the sim hot-path throughput this
  /// sweep actually saw; 0 when no simulation ran).
  double sim_lines_per_sec() const {
    return wall_seconds > 0.0 ? static_cast<double>(sim_lines) / wall_seconds : 0.0;
  }

  bool operator==(const SweepStats&) const = default;
};

/// Sets the process-wide sweep worker count. 0 runs every sweep inline
/// and serial (today's pre-engine behavior); n > 0 (re)builds the shared
/// pool with n workers. Not safe to call concurrently with running
/// sweeps.
void set_sweep_workers(std::size_t n);

/// Currently configured worker count (default: hardware concurrency).
std::size_t sweep_workers();

/// Copies the stats log (most recent last; the log keeps the latest 256
/// top-level sweeps).
std::vector<SweepStats> sweep_stats_log();

/// Returns the stats log and clears it.
std::vector<SweepStats> drain_sweep_stats();

/// Emits stats as a CSV block via util::CsvWriter (one row per sweep).
void write_sweep_stats_csv(std::ostream& os, const std::vector<SweepStats>& stats);

/// One sweep as a single-line JSON object (all fields, including the
/// per-worker busy array).
std::string sweep_stats_json(const SweepStats& s);

struct CacheProbe;  // core/result_cache.hpp

namespace detail {

/// Shared pool sized to sweep_workers(); nullptr when serial.
util::ThreadPool* sweep_pool();

/// Records a synthetic SweepStats entry for a cache-served sweep (no pool
/// work ran). Follows SweepTimer's nesting rules: hits that happen inside
/// another sweep's task are folded into the enclosing record, i.e. not
/// recorded separately.
void record_cache_hit(const char* name, std::size_t items, const CacheProbe& probe);

/// Folds a miss-path probe (lookup latency + store bytes) into the most
/// recently recorded sweep with the given name, if any. No-op for nested
/// sweeps, which never recorded a top-level entry.
void annotate_cache_miss(const char* name, const CacheProbe& probe);

/// RAII sampler around one sweep_transform call: snapshots the pool
/// counters at construction and records a SweepStats delta at stop().
/// Records nothing for nested sweeps (their work is attributed to the
/// enclosing top-level record).
class SweepTimer {
 public:
  SweepTimer(const char* name, std::size_t items, util::ThreadPool* pool);
  ~SweepTimer() { stop(); }
  void stop();

 private:
  std::string name_;
  std::size_t items_;
  util::ThreadPool* pool_;
  bool active_ = false;
  bool stopped_ = false;
  std::vector<util::ThreadPool::WorkerCounters> before_;
  std::uint64_t sim_lines_before_ = 0;  ///< "sim.lines_simulated" watermark
  std::uint64_t sampled_windows_before_ = 0;  ///< "sim.sampled_windows" watermark
  double rel_error_before_ = 0.0;  ///< "sim.sampling_rel_error" watermark
  std::chrono::steady_clock::time_point t0_;
};

}  // namespace detail

namespace detail {
/// Chunk size actually used: at least `min_grain`, but no more than ~8
/// chunks per worker, so sweeps with cheap per-point work don't drown in
/// scheduling overhead while stealing still has slack to balance.
inline std::size_t sweep_grain(std::size_t count, std::size_t min_grain,
                               std::size_t workers) {
  const std::size_t target_chunks = workers * 8;
  const std::size_t g = target_chunks > 0 ? count / target_chunks : count;
  return std::max<std::size_t>(min_grain, std::max<std::size_t>(g, 1));
}
}  // namespace detail

/// Evaluates fn(0..count-1) through the sweep pool and returns the
/// results in index order — bit-identical to the serial loop for any
/// worker count (fn must be pure w.r.t. shared state). `grain` is the
/// minimum number of items per scheduler task.
template <typename Fn>
auto sweep_transform(const char* name, std::size_t count, std::size_t grain, Fn&& fn)
    -> std::vector<std::decay_t<decltype(fn(std::size_t{0}))>> {
  using T = std::decay_t<decltype(fn(std::size_t{0}))>;
  util::ThreadPool* pool = detail::sweep_pool();
  detail::SweepTimer timer(name, count, pool);
  if (pool == nullptr) {
    std::vector<T> out;
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i) out.push_back(fn(i));
    timer.stop();
    return out;
  }
  auto out = pool->parallel_transform(
      0, count, detail::sweep_grain(count, grain, pool->workers()), fn);
  timer.stop();
  return out;
}

}  // namespace opm::core
