#pragma once

#include <cstddef>
#include <vector>

/// The original Valley model (Guz et al., "Many-Core vs. Many-Thread
/// Machines: Stay Away From the Valley") that the paper's Stepping Model
/// is derived from (section 4.1.2).
///
/// The Valley model plots throughput against *thread count*: performance
/// rises while the aggregate working set fits cache (the "cache
/// efficiency" region), collapses into a valley once it spills and too
/// few threads exist to hide memory latency, then recovers as massive
/// multithreading saturates bandwidth (the "MT efficiency" region). The
/// Stepping Model replaces the thread axis with problem footprint and
/// adds one peak per hierarchy level — the two describe the same physics,
/// which `bench/ablation_valley_vs_stepping` demonstrates side by side.
namespace opm::core {

/// Machine/workload parameters of the classic analytic form.
struct ValleyParams {
  double cache_bytes = 4.0 * 1024 * 1024;  ///< shared cache capacity
  double per_thread_ws = 256.0 * 1024;     ///< working set per thread, bytes
  double flops_per_byte = 0.25;            ///< kernel arithmetic intensity
  double core_flops = 4.0e9;               ///< per-thread compute rate, flop/s
  double mem_latency = 80.0e-9;            ///< seconds per line
  double mem_bandwidth = 40.0e9;           ///< bytes/s
  double mlp_per_thread = 1.5;             ///< outstanding lines per thread
  double line_bytes = 64.0;
  std::size_t max_threads = 1024;
};

/// One throughput-vs-threads curve.
struct ValleyCurve {
  std::vector<double> threads;
  std::vector<double> gflops;
};

/// Aggregate hit rate with t threads: min(1, C / (t · ws)) — the LRU
/// approximation of the shared cache under t identical working sets.
double valley_hit_rate(const ValleyParams& p, double t);

/// Throughput with t threads (flop/s): compute rate discounted by memory
/// stalls that t·mlp outstanding lines cannot hide, clamped by the
/// bandwidth roof.
double valley_throughput(const ValleyParams& p, double t);

/// Evaluates the curve at 1..max_threads (log-ish sampling).
ValleyCurve valley_curve(const ValleyParams& p);

/// The defining feature set: the pre-valley peak (cache region), the
/// valley bottom, and the many-thread recovery level.
struct ValleyFeatures {
  double cache_peak_threads = 0.0;
  double cache_peak_gflops = 0.0;
  double valley_threads = 0.0;
  double valley_gflops = 0.0;
  double recovered_gflops = 0.0;  ///< throughput at max_threads
  bool has_valley = false;
};
ValleyFeatures analyze_valley(const ValleyCurve& curve);

}  // namespace opm::core
