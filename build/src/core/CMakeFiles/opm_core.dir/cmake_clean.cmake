file(REMOVE_RECURSE
  "CMakeFiles/opm_core.dir/advisor.cpp.o"
  "CMakeFiles/opm_core.dir/advisor.cpp.o.d"
  "CMakeFiles/opm_core.dir/density.cpp.o"
  "CMakeFiles/opm_core.dir/density.cpp.o.d"
  "CMakeFiles/opm_core.dir/experiment.cpp.o"
  "CMakeFiles/opm_core.dir/experiment.cpp.o.d"
  "CMakeFiles/opm_core.dir/multitenant.cpp.o"
  "CMakeFiles/opm_core.dir/multitenant.cpp.o.d"
  "CMakeFiles/opm_core.dir/roofline.cpp.o"
  "CMakeFiles/opm_core.dir/roofline.cpp.o.d"
  "CMakeFiles/opm_core.dir/speedup.cpp.o"
  "CMakeFiles/opm_core.dir/speedup.cpp.o.d"
  "CMakeFiles/opm_core.dir/stepping.cpp.o"
  "CMakeFiles/opm_core.dir/stepping.cpp.o.d"
  "CMakeFiles/opm_core.dir/validation.cpp.o"
  "CMakeFiles/opm_core.dir/validation.cpp.o.d"
  "CMakeFiles/opm_core.dir/valley.cpp.o"
  "CMakeFiles/opm_core.dir/valley.cpp.o.d"
  "libopm_core.a"
  "libopm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
