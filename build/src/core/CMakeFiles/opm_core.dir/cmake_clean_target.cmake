file(REMOVE_RECURSE
  "libopm_core.a"
)
