
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/advisor.cpp" "src/core/CMakeFiles/opm_core.dir/advisor.cpp.o" "gcc" "src/core/CMakeFiles/opm_core.dir/advisor.cpp.o.d"
  "/root/repo/src/core/density.cpp" "src/core/CMakeFiles/opm_core.dir/density.cpp.o" "gcc" "src/core/CMakeFiles/opm_core.dir/density.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/core/CMakeFiles/opm_core.dir/experiment.cpp.o" "gcc" "src/core/CMakeFiles/opm_core.dir/experiment.cpp.o.d"
  "/root/repo/src/core/multitenant.cpp" "src/core/CMakeFiles/opm_core.dir/multitenant.cpp.o" "gcc" "src/core/CMakeFiles/opm_core.dir/multitenant.cpp.o.d"
  "/root/repo/src/core/roofline.cpp" "src/core/CMakeFiles/opm_core.dir/roofline.cpp.o" "gcc" "src/core/CMakeFiles/opm_core.dir/roofline.cpp.o.d"
  "/root/repo/src/core/speedup.cpp" "src/core/CMakeFiles/opm_core.dir/speedup.cpp.o" "gcc" "src/core/CMakeFiles/opm_core.dir/speedup.cpp.o.d"
  "/root/repo/src/core/stepping.cpp" "src/core/CMakeFiles/opm_core.dir/stepping.cpp.o" "gcc" "src/core/CMakeFiles/opm_core.dir/stepping.cpp.o.d"
  "/root/repo/src/core/validation.cpp" "src/core/CMakeFiles/opm_core.dir/validation.cpp.o" "gcc" "src/core/CMakeFiles/opm_core.dir/validation.cpp.o.d"
  "/root/repo/src/core/valley.cpp" "src/core/CMakeFiles/opm_core.dir/valley.cpp.o" "gcc" "src/core/CMakeFiles/opm_core.dir/valley.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kernels/CMakeFiles/opm_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/opm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/opm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/opm_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/opm_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/dense/CMakeFiles/opm_dense.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
