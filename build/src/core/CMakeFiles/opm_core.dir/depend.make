# Empty dependencies file for opm_core.
# This may be replaced when dependencies are built.
