
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/address_map.cpp" "src/sim/CMakeFiles/opm_sim.dir/address_map.cpp.o" "gcc" "src/sim/CMakeFiles/opm_sim.dir/address_map.cpp.o.d"
  "/root/repo/src/sim/cache.cpp" "src/sim/CMakeFiles/opm_sim.dir/cache.cpp.o" "gcc" "src/sim/CMakeFiles/opm_sim.dir/cache.cpp.o.d"
  "/root/repo/src/sim/config_io.cpp" "src/sim/CMakeFiles/opm_sim.dir/config_io.cpp.o" "gcc" "src/sim/CMakeFiles/opm_sim.dir/config_io.cpp.o.d"
  "/root/repo/src/sim/memory_system.cpp" "src/sim/CMakeFiles/opm_sim.dir/memory_system.cpp.o" "gcc" "src/sim/CMakeFiles/opm_sim.dir/memory_system.cpp.o.d"
  "/root/repo/src/sim/platform.cpp" "src/sim/CMakeFiles/opm_sim.dir/platform.cpp.o" "gcc" "src/sim/CMakeFiles/opm_sim.dir/platform.cpp.o.d"
  "/root/repo/src/sim/power.cpp" "src/sim/CMakeFiles/opm_sim.dir/power.cpp.o" "gcc" "src/sim/CMakeFiles/opm_sim.dir/power.cpp.o.d"
  "/root/repo/src/sim/prefetcher.cpp" "src/sim/CMakeFiles/opm_sim.dir/prefetcher.cpp.o" "gcc" "src/sim/CMakeFiles/opm_sim.dir/prefetcher.cpp.o.d"
  "/root/repo/src/sim/timing.cpp" "src/sim/CMakeFiles/opm_sim.dir/timing.cpp.o" "gcc" "src/sim/CMakeFiles/opm_sim.dir/timing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/opm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
