file(REMOVE_RECURSE
  "libopm_sim.a"
)
