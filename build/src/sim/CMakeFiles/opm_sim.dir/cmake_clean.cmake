file(REMOVE_RECURSE
  "CMakeFiles/opm_sim.dir/address_map.cpp.o"
  "CMakeFiles/opm_sim.dir/address_map.cpp.o.d"
  "CMakeFiles/opm_sim.dir/cache.cpp.o"
  "CMakeFiles/opm_sim.dir/cache.cpp.o.d"
  "CMakeFiles/opm_sim.dir/config_io.cpp.o"
  "CMakeFiles/opm_sim.dir/config_io.cpp.o.d"
  "CMakeFiles/opm_sim.dir/memory_system.cpp.o"
  "CMakeFiles/opm_sim.dir/memory_system.cpp.o.d"
  "CMakeFiles/opm_sim.dir/platform.cpp.o"
  "CMakeFiles/opm_sim.dir/platform.cpp.o.d"
  "CMakeFiles/opm_sim.dir/power.cpp.o"
  "CMakeFiles/opm_sim.dir/power.cpp.o.d"
  "CMakeFiles/opm_sim.dir/prefetcher.cpp.o"
  "CMakeFiles/opm_sim.dir/prefetcher.cpp.o.d"
  "CMakeFiles/opm_sim.dir/timing.cpp.o"
  "CMakeFiles/opm_sim.dir/timing.cpp.o.d"
  "libopm_sim.a"
  "libopm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
