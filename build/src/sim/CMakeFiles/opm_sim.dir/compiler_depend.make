# Empty compiler generated dependencies file for opm_sim.
# This may be replaced when dependencies are built.
