
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/reuse.cpp" "src/trace/CMakeFiles/opm_trace.dir/reuse.cpp.o" "gcc" "src/trace/CMakeFiles/opm_trace.dir/reuse.cpp.o.d"
  "/root/repo/src/trace/sampler.cpp" "src/trace/CMakeFiles/opm_trace.dir/sampler.cpp.o" "gcc" "src/trace/CMakeFiles/opm_trace.dir/sampler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/opm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/opm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
