file(REMOVE_RECURSE
  "libopm_trace.a"
)
