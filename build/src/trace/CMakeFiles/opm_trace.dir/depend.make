# Empty dependencies file for opm_trace.
# This may be replaced when dependencies are built.
