file(REMOVE_RECURSE
  "CMakeFiles/opm_trace.dir/reuse.cpp.o"
  "CMakeFiles/opm_trace.dir/reuse.cpp.o.d"
  "CMakeFiles/opm_trace.dir/sampler.cpp.o"
  "CMakeFiles/opm_trace.dir/sampler.cpp.o.d"
  "libopm_trace.a"
  "libopm_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opm_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
