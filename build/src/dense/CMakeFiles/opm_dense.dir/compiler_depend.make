# Empty compiler generated dependencies file for opm_dense.
# This may be replaced when dependencies are built.
