file(REMOVE_RECURSE
  "libopm_dense.a"
)
