file(REMOVE_RECURSE
  "CMakeFiles/opm_dense.dir/blas.cpp.o"
  "CMakeFiles/opm_dense.dir/blas.cpp.o.d"
  "CMakeFiles/opm_dense.dir/matrix.cpp.o"
  "CMakeFiles/opm_dense.dir/matrix.cpp.o.d"
  "libopm_dense.a"
  "libopm_dense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opm_dense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
