file(REMOVE_RECURSE
  "libopm_sparse.a"
)
