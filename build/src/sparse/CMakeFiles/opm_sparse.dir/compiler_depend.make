# Empty compiler generated dependencies file for opm_sparse.
# This may be replaced when dependencies are built.
