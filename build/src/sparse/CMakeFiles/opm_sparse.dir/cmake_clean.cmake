file(REMOVE_RECURSE
  "CMakeFiles/opm_sparse.dir/collection.cpp.o"
  "CMakeFiles/opm_sparse.dir/collection.cpp.o.d"
  "CMakeFiles/opm_sparse.dir/formats.cpp.o"
  "CMakeFiles/opm_sparse.dir/formats.cpp.o.d"
  "CMakeFiles/opm_sparse.dir/generators.cpp.o"
  "CMakeFiles/opm_sparse.dir/generators.cpp.o.d"
  "CMakeFiles/opm_sparse.dir/mm_io.cpp.o"
  "CMakeFiles/opm_sparse.dir/mm_io.cpp.o.d"
  "CMakeFiles/opm_sparse.dir/segmented_sort.cpp.o"
  "CMakeFiles/opm_sparse.dir/segmented_sort.cpp.o.d"
  "CMakeFiles/opm_sparse.dir/stats.cpp.o"
  "CMakeFiles/opm_sparse.dir/stats.cpp.o.d"
  "libopm_sparse.a"
  "libopm_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opm_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
