
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sparse/collection.cpp" "src/sparse/CMakeFiles/opm_sparse.dir/collection.cpp.o" "gcc" "src/sparse/CMakeFiles/opm_sparse.dir/collection.cpp.o.d"
  "/root/repo/src/sparse/formats.cpp" "src/sparse/CMakeFiles/opm_sparse.dir/formats.cpp.o" "gcc" "src/sparse/CMakeFiles/opm_sparse.dir/formats.cpp.o.d"
  "/root/repo/src/sparse/generators.cpp" "src/sparse/CMakeFiles/opm_sparse.dir/generators.cpp.o" "gcc" "src/sparse/CMakeFiles/opm_sparse.dir/generators.cpp.o.d"
  "/root/repo/src/sparse/mm_io.cpp" "src/sparse/CMakeFiles/opm_sparse.dir/mm_io.cpp.o" "gcc" "src/sparse/CMakeFiles/opm_sparse.dir/mm_io.cpp.o.d"
  "/root/repo/src/sparse/segmented_sort.cpp" "src/sparse/CMakeFiles/opm_sparse.dir/segmented_sort.cpp.o" "gcc" "src/sparse/CMakeFiles/opm_sparse.dir/segmented_sort.cpp.o.d"
  "/root/repo/src/sparse/stats.cpp" "src/sparse/CMakeFiles/opm_sparse.dir/stats.cpp.o" "gcc" "src/sparse/CMakeFiles/opm_sparse.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/opm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
