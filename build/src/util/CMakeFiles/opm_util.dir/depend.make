# Empty dependencies file for opm_util.
# This may be replaced when dependencies are built.
