file(REMOVE_RECURSE
  "libopm_util.a"
)
