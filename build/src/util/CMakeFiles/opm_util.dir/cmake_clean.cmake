file(REMOVE_RECURSE
  "CMakeFiles/opm_util.dir/ascii_plot.cpp.o"
  "CMakeFiles/opm_util.dir/ascii_plot.cpp.o.d"
  "CMakeFiles/opm_util.dir/cli.cpp.o"
  "CMakeFiles/opm_util.dir/cli.cpp.o.d"
  "CMakeFiles/opm_util.dir/csv.cpp.o"
  "CMakeFiles/opm_util.dir/csv.cpp.o.d"
  "CMakeFiles/opm_util.dir/format.cpp.o"
  "CMakeFiles/opm_util.dir/format.cpp.o.d"
  "CMakeFiles/opm_util.dir/histogram.cpp.o"
  "CMakeFiles/opm_util.dir/histogram.cpp.o.d"
  "CMakeFiles/opm_util.dir/logging.cpp.o"
  "CMakeFiles/opm_util.dir/logging.cpp.o.d"
  "CMakeFiles/opm_util.dir/rng.cpp.o"
  "CMakeFiles/opm_util.dir/rng.cpp.o.d"
  "CMakeFiles/opm_util.dir/stats.cpp.o"
  "CMakeFiles/opm_util.dir/stats.cpp.o.d"
  "CMakeFiles/opm_util.dir/thread_pool.cpp.o"
  "CMakeFiles/opm_util.dir/thread_pool.cpp.o.d"
  "libopm_util.a"
  "libopm_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opm_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
