# Empty compiler generated dependencies file for opm_kernels.
# This may be replaced when dependencies are built.
