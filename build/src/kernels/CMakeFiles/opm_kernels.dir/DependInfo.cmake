
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/cholesky.cpp" "src/kernels/CMakeFiles/opm_kernels.dir/cholesky.cpp.o" "gcc" "src/kernels/CMakeFiles/opm_kernels.dir/cholesky.cpp.o.d"
  "/root/repo/src/kernels/csr5.cpp" "src/kernels/CMakeFiles/opm_kernels.dir/csr5.cpp.o" "gcc" "src/kernels/CMakeFiles/opm_kernels.dir/csr5.cpp.o.d"
  "/root/repo/src/kernels/fft.cpp" "src/kernels/CMakeFiles/opm_kernels.dir/fft.cpp.o" "gcc" "src/kernels/CMakeFiles/opm_kernels.dir/fft.cpp.o.d"
  "/root/repo/src/kernels/gemm.cpp" "src/kernels/CMakeFiles/opm_kernels.dir/gemm.cpp.o" "gcc" "src/kernels/CMakeFiles/opm_kernels.dir/gemm.cpp.o.d"
  "/root/repo/src/kernels/model.cpp" "src/kernels/CMakeFiles/opm_kernels.dir/model.cpp.o" "gcc" "src/kernels/CMakeFiles/opm_kernels.dir/model.cpp.o.d"
  "/root/repo/src/kernels/parallel.cpp" "src/kernels/CMakeFiles/opm_kernels.dir/parallel.cpp.o" "gcc" "src/kernels/CMakeFiles/opm_kernels.dir/parallel.cpp.o.d"
  "/root/repo/src/kernels/spec.cpp" "src/kernels/CMakeFiles/opm_kernels.dir/spec.cpp.o" "gcc" "src/kernels/CMakeFiles/opm_kernels.dir/spec.cpp.o.d"
  "/root/repo/src/kernels/spmv.cpp" "src/kernels/CMakeFiles/opm_kernels.dir/spmv.cpp.o" "gcc" "src/kernels/CMakeFiles/opm_kernels.dir/spmv.cpp.o.d"
  "/root/repo/src/kernels/sptrans.cpp" "src/kernels/CMakeFiles/opm_kernels.dir/sptrans.cpp.o" "gcc" "src/kernels/CMakeFiles/opm_kernels.dir/sptrans.cpp.o.d"
  "/root/repo/src/kernels/sptrsv.cpp" "src/kernels/CMakeFiles/opm_kernels.dir/sptrsv.cpp.o" "gcc" "src/kernels/CMakeFiles/opm_kernels.dir/sptrsv.cpp.o.d"
  "/root/repo/src/kernels/stencil.cpp" "src/kernels/CMakeFiles/opm_kernels.dir/stencil.cpp.o" "gcc" "src/kernels/CMakeFiles/opm_kernels.dir/stencil.cpp.o.d"
  "/root/repo/src/kernels/stream.cpp" "src/kernels/CMakeFiles/opm_kernels.dir/stream.cpp.o" "gcc" "src/kernels/CMakeFiles/opm_kernels.dir/stream.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/opm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/opm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/opm_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/opm_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/dense/CMakeFiles/opm_dense.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
