file(REMOVE_RECURSE
  "libopm_kernels.a"
)
