file(REMOVE_RECURSE
  "CMakeFiles/opm_kernels.dir/cholesky.cpp.o"
  "CMakeFiles/opm_kernels.dir/cholesky.cpp.o.d"
  "CMakeFiles/opm_kernels.dir/csr5.cpp.o"
  "CMakeFiles/opm_kernels.dir/csr5.cpp.o.d"
  "CMakeFiles/opm_kernels.dir/fft.cpp.o"
  "CMakeFiles/opm_kernels.dir/fft.cpp.o.d"
  "CMakeFiles/opm_kernels.dir/gemm.cpp.o"
  "CMakeFiles/opm_kernels.dir/gemm.cpp.o.d"
  "CMakeFiles/opm_kernels.dir/model.cpp.o"
  "CMakeFiles/opm_kernels.dir/model.cpp.o.d"
  "CMakeFiles/opm_kernels.dir/parallel.cpp.o"
  "CMakeFiles/opm_kernels.dir/parallel.cpp.o.d"
  "CMakeFiles/opm_kernels.dir/spec.cpp.o"
  "CMakeFiles/opm_kernels.dir/spec.cpp.o.d"
  "CMakeFiles/opm_kernels.dir/spmv.cpp.o"
  "CMakeFiles/opm_kernels.dir/spmv.cpp.o.d"
  "CMakeFiles/opm_kernels.dir/sptrans.cpp.o"
  "CMakeFiles/opm_kernels.dir/sptrans.cpp.o.d"
  "CMakeFiles/opm_kernels.dir/sptrsv.cpp.o"
  "CMakeFiles/opm_kernels.dir/sptrsv.cpp.o.d"
  "CMakeFiles/opm_kernels.dir/stencil.cpp.o"
  "CMakeFiles/opm_kernels.dir/stencil.cpp.o.d"
  "CMakeFiles/opm_kernels.dir/stream.cpp.o"
  "CMakeFiles/opm_kernels.dir/stream.cpp.o.d"
  "libopm_kernels.a"
  "libopm_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opm_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
