# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_memory_system[1]_include.cmake")
include("/root/repo/build/tests/test_timing_power[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_sparse[1]_include.cmake")
include("/root/repo/build/tests/test_dense[1]_include.cmake")
include("/root/repo/build/tests/test_kernels_dense[1]_include.cmake")
include("/root/repo/build/tests/test_kernels_sparse[1]_include.cmake")
include("/root/repo/build/tests/test_kernels_other[1]_include.cmake")
include("/root/repo/build/tests/test_models[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_paper_findings[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_parallel_and_io[1]_include.cmake")
include("/root/repo/build/tests/test_sim_properties[1]_include.cmake")
include("/root/repo/build/tests/test_goldens[1]_include.cmake")
include("/root/repo/build/tests/test_misc_coverage[1]_include.cmake")
include("/root/repo/build/tests/test_sweep_matrix[1]_include.cmake")
