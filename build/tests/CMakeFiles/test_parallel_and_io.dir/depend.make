# Empty dependencies file for test_parallel_and_io.
# This may be replaced when dependencies are built.
