# Empty dependencies file for test_goldens.
# This may be replaced when dependencies are built.
