# Empty dependencies file for test_sweep_matrix.
# This may be replaced when dependencies are built.
