file(REMOVE_RECURSE
  "CMakeFiles/test_sweep_matrix.dir/test_sweep_matrix.cpp.o"
  "CMakeFiles/test_sweep_matrix.dir/test_sweep_matrix.cpp.o.d"
  "test_sweep_matrix"
  "test_sweep_matrix.pdb"
  "test_sweep_matrix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sweep_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
