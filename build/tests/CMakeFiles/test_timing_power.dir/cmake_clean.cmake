file(REMOVE_RECURSE
  "CMakeFiles/test_timing_power.dir/test_timing_power.cpp.o"
  "CMakeFiles/test_timing_power.dir/test_timing_power.cpp.o.d"
  "test_timing_power"
  "test_timing_power.pdb"
  "test_timing_power[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_timing_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
