# Empty compiler generated dependencies file for test_kernels_other.
# This may be replaced when dependencies are built.
