file(REMOVE_RECURSE
  "CMakeFiles/test_kernels_other.dir/test_kernels_other.cpp.o"
  "CMakeFiles/test_kernels_other.dir/test_kernels_other.cpp.o.d"
  "test_kernels_other"
  "test_kernels_other.pdb"
  "test_kernels_other[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernels_other.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
