file(REMOVE_RECURSE
  "CMakeFiles/test_kernels_dense.dir/test_kernels_dense.cpp.o"
  "CMakeFiles/test_kernels_dense.dir/test_kernels_dense.cpp.o.d"
  "test_kernels_dense"
  "test_kernels_dense.pdb"
  "test_kernels_dense[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernels_dense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
