# Empty dependencies file for fig08_cholesky_broadwell.
# This may be replaced when dependencies are built.
