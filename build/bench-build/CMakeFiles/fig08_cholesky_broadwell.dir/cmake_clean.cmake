file(REMOVE_RECURSE
  "../bench/fig08_cholesky_broadwell"
  "../bench/fig08_cholesky_broadwell.pdb"
  "CMakeFiles/fig08_cholesky_broadwell.dir/fig08_cholesky_broadwell.cpp.o"
  "CMakeFiles/fig08_cholesky_broadwell.dir/fig08_cholesky_broadwell.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_cholesky_broadwell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
