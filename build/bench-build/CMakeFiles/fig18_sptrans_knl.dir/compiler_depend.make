# Empty compiler generated dependencies file for fig18_sptrans_knl.
# This may be replaced when dependencies are built.
