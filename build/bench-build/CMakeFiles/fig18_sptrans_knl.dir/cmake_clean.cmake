file(REMOVE_RECURSE
  "../bench/fig18_sptrans_knl"
  "../bench/fig18_sptrans_knl.pdb"
  "CMakeFiles/fig18_sptrans_knl.dir/fig18_sptrans_knl.cpp.o"
  "CMakeFiles/fig18_sptrans_knl.dir/fig18_sptrans_knl.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_sptrans_knl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
