# Empty compiler generated dependencies file for fig05_roofline.
# This may be replaced when dependencies are built.
