file(REMOVE_RECURSE
  "../bench/fig05_roofline"
  "../bench/fig05_roofline.pdb"
  "CMakeFiles/fig05_roofline.dir/fig05_roofline.cpp.o"
  "CMakeFiles/fig05_roofline.dir/fig05_roofline.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_roofline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
