# Empty dependencies file for ablation_cluster_modes.
# This may be replaced when dependencies are built.
