file(REMOVE_RECURSE
  "../bench/ablation_cluster_modes"
  "../bench/ablation_cluster_modes.pdb"
  "CMakeFiles/ablation_cluster_modes.dir/ablation_cluster_modes.cpp.o"
  "CMakeFiles/ablation_cluster_modes.dir/ablation_cluster_modes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cluster_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
