# Empty compiler generated dependencies file for fig26_power_broadwell.
# This may be replaced when dependencies are built.
