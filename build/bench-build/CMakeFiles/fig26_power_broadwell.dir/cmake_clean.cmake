file(REMOVE_RECURSE
  "../bench/fig26_power_broadwell"
  "../bench/fig26_power_broadwell.pdb"
  "CMakeFiles/fig26_power_broadwell.dir/fig26_power_broadwell.cpp.o"
  "CMakeFiles/fig26_power_broadwell.dir/fig26_power_broadwell.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig26_power_broadwell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
