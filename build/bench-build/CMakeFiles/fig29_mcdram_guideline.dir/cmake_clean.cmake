file(REMOVE_RECURSE
  "../bench/fig29_mcdram_guideline"
  "../bench/fig29_mcdram_guideline.pdb"
  "CMakeFiles/fig29_mcdram_guideline.dir/fig29_mcdram_guideline.cpp.o"
  "CMakeFiles/fig29_mcdram_guideline.dir/fig29_mcdram_guideline.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig29_mcdram_guideline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
