# Empty compiler generated dependencies file for fig29_mcdram_guideline.
# This may be replaced when dependencies are built.
