# Empty compiler generated dependencies file for fig20_22_structure_knl.
# This may be replaced when dependencies are built.
