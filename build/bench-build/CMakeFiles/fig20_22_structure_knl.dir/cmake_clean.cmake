file(REMOVE_RECURSE
  "../bench/fig20_22_structure_knl"
  "../bench/fig20_22_structure_knl.pdb"
  "CMakeFiles/fig20_22_structure_knl.dir/fig20_22_structure_knl.cpp.o"
  "CMakeFiles/fig20_22_structure_knl.dir/fig20_22_structure_knl.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_22_structure_knl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
