# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig20_22_structure_knl.
