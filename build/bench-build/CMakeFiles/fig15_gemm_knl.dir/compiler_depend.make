# Empty compiler generated dependencies file for fig15_gemm_knl.
# This may be replaced when dependencies are built.
