file(REMOVE_RECURSE
  "../bench/fig15_gemm_knl"
  "../bench/fig15_gemm_knl.pdb"
  "CMakeFiles/fig15_gemm_knl.dir/fig15_gemm_knl.cpp.o"
  "CMakeFiles/fig15_gemm_knl.dir/fig15_gemm_knl.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_gemm_knl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
