file(REMOVE_RECURSE
  "../bench/fig16_cholesky_knl"
  "../bench/fig16_cholesky_knl.pdb"
  "CMakeFiles/fig16_cholesky_knl.dir/fig16_cholesky_knl.cpp.o"
  "CMakeFiles/fig16_cholesky_knl.dir/fig16_cholesky_knl.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_cholesky_knl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
