# Empty dependencies file for fig16_cholesky_knl.
# This may be replaced when dependencies are built.
