file(REMOVE_RECURSE
  "../bench/fig12_stream_broadwell"
  "../bench/fig12_stream_broadwell.pdb"
  "CMakeFiles/fig12_stream_broadwell.dir/fig12_stream_broadwell.cpp.o"
  "CMakeFiles/fig12_stream_broadwell.dir/fig12_stream_broadwell.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_stream_broadwell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
