# Empty dependencies file for fig12_stream_broadwell.
# This may be replaced when dependencies are built.
