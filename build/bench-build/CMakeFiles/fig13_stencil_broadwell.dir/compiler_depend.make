# Empty compiler generated dependencies file for fig13_stencil_broadwell.
# This may be replaced when dependencies are built.
