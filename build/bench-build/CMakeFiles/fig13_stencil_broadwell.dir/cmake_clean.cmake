file(REMOVE_RECURSE
  "../bench/fig13_stencil_broadwell"
  "../bench/fig13_stencil_broadwell.pdb"
  "CMakeFiles/fig13_stencil_broadwell.dir/fig13_stencil_broadwell.cpp.o"
  "CMakeFiles/fig13_stencil_broadwell.dir/fig13_stencil_broadwell.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_stencil_broadwell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
