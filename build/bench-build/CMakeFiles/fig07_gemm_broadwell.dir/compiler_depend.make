# Empty compiler generated dependencies file for fig07_gemm_broadwell.
# This may be replaced when dependencies are built.
