file(REMOVE_RECURSE
  "../bench/fig07_gemm_broadwell"
  "../bench/fig07_gemm_broadwell.pdb"
  "CMakeFiles/fig07_gemm_broadwell.dir/fig07_gemm_broadwell.cpp.o"
  "CMakeFiles/fig07_gemm_broadwell.dir/fig07_gemm_broadwell.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_gemm_broadwell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
