file(REMOVE_RECURSE
  "../bench/fig25_fft_knl"
  "../bench/fig25_fft_knl.pdb"
  "CMakeFiles/fig25_fft_knl.dir/fig25_fft_knl.cpp.o"
  "CMakeFiles/fig25_fft_knl.dir/fig25_fft_knl.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig25_fft_knl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
