# Empty dependencies file for fig25_fft_knl.
# This may be replaced when dependencies are built.
