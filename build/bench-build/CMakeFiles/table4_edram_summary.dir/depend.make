# Empty dependencies file for table4_edram_summary.
# This may be replaced when dependencies are built.
