file(REMOVE_RECURSE
  "../bench/table4_edram_summary"
  "../bench/table4_edram_summary.pdb"
  "CMakeFiles/table4_edram_summary.dir/table4_edram_summary.cpp.o"
  "CMakeFiles/table4_edram_summary.dir/table4_edram_summary.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_edram_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
