file(REMOVE_RECURSE
  "../bench/fig24_stencil_knl"
  "../bench/fig24_stencil_knl.pdb"
  "CMakeFiles/fig24_stencil_knl.dir/fig24_stencil_knl.cpp.o"
  "CMakeFiles/fig24_stencil_knl.dir/fig24_stencil_knl.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig24_stencil_knl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
