# Empty dependencies file for fig24_stencil_knl.
# This may be replaced when dependencies are built.
