# Empty compiler generated dependencies file for fig30_hw_tuning.
# This may be replaced when dependencies are built.
