file(REMOVE_RECURSE
  "../bench/fig30_hw_tuning"
  "../bench/fig30_hw_tuning.pdb"
  "CMakeFiles/fig30_hw_tuning.dir/fig30_hw_tuning.cpp.o"
  "CMakeFiles/fig30_hw_tuning.dir/fig30_hw_tuning.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig30_hw_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
