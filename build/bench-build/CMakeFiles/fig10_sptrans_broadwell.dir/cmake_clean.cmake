file(REMOVE_RECURSE
  "../bench/fig10_sptrans_broadwell"
  "../bench/fig10_sptrans_broadwell.pdb"
  "CMakeFiles/fig10_sptrans_broadwell.dir/fig10_sptrans_broadwell.cpp.o"
  "CMakeFiles/fig10_sptrans_broadwell.dir/fig10_sptrans_broadwell.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_sptrans_broadwell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
