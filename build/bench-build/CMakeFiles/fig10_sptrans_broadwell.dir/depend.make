# Empty dependencies file for fig10_sptrans_broadwell.
# This may be replaced when dependencies are built.
