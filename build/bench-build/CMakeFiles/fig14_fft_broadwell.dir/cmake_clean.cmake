file(REMOVE_RECURSE
  "../bench/fig14_fft_broadwell"
  "../bench/fig14_fft_broadwell.pdb"
  "CMakeFiles/fig14_fft_broadwell.dir/fig14_fft_broadwell.cpp.o"
  "CMakeFiles/fig14_fft_broadwell.dir/fig14_fft_broadwell.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_fft_broadwell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
