# Empty dependencies file for fig14_fft_broadwell.
# This may be replaced when dependencies are built.
