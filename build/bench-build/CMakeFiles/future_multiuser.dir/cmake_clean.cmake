file(REMOVE_RECURSE
  "../bench/future_multiuser"
  "../bench/future_multiuser.pdb"
  "CMakeFiles/future_multiuser.dir/future_multiuser.cpp.o"
  "CMakeFiles/future_multiuser.dir/future_multiuser.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/future_multiuser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
