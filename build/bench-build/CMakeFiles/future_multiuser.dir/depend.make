# Empty dependencies file for future_multiuser.
# This may be replaced when dependencies are built.
