file(REMOVE_RECURSE
  "../bench/ablation_split_penalty"
  "../bench/ablation_split_penalty.pdb"
  "CMakeFiles/ablation_split_penalty.dir/ablation_split_penalty.cpp.o"
  "CMakeFiles/ablation_split_penalty.dir/ablation_split_penalty.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_split_penalty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
