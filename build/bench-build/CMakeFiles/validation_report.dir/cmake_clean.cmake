file(REMOVE_RECURSE
  "../bench/validation_report"
  "../bench/validation_report.pdb"
  "CMakeFiles/validation_report.dir/validation_report.cpp.o"
  "CMakeFiles/validation_report.dir/validation_report.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validation_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
