# Empty dependencies file for opm_bench_common.
# This may be replaced when dependencies are built.
