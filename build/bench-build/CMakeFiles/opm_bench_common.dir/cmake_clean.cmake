file(REMOVE_RECURSE
  "CMakeFiles/opm_bench_common.dir/common.cpp.o"
  "CMakeFiles/opm_bench_common.dir/common.cpp.o.d"
  "libopm_bench_common.a"
  "libopm_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opm_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
