file(REMOVE_RECURSE
  "libopm_bench_common.a"
)
