file(REMOVE_RECURSE
  "../bench/ablation_valley_vs_stepping"
  "../bench/ablation_valley_vs_stepping.pdb"
  "CMakeFiles/ablation_valley_vs_stepping.dir/ablation_valley_vs_stepping.cpp.o"
  "CMakeFiles/ablation_valley_vs_stepping.dir/ablation_valley_vs_stepping.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_valley_vs_stepping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
