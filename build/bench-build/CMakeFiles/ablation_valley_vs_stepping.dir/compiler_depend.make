# Empty compiler generated dependencies file for ablation_valley_vs_stepping.
# This may be replaced when dependencies are built.
