file(REMOVE_RECURSE
  "../bench/table2_kernel_specs"
  "../bench/table2_kernel_specs.pdb"
  "CMakeFiles/table2_kernel_specs.dir/table2_kernel_specs.cpp.o"
  "CMakeFiles/table2_kernel_specs.dir/table2_kernel_specs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_kernel_specs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
