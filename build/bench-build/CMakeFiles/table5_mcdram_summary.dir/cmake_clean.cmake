file(REMOVE_RECURSE
  "../bench/table5_mcdram_summary"
  "../bench/table5_mcdram_summary.pdb"
  "CMakeFiles/table5_mcdram_summary.dir/table5_mcdram_summary.cpp.o"
  "CMakeFiles/table5_mcdram_summary.dir/table5_mcdram_summary.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_mcdram_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
