file(REMOVE_RECURSE
  "../bench/fig19_sptrsv_knl"
  "../bench/fig19_sptrsv_knl.pdb"
  "CMakeFiles/fig19_sptrsv_knl.dir/fig19_sptrsv_knl.cpp.o"
  "CMakeFiles/fig19_sptrsv_knl.dir/fig19_sptrsv_knl.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_sptrsv_knl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
