# Empty compiler generated dependencies file for fig19_sptrsv_knl.
# This may be replaced when dependencies are built.
