file(REMOVE_RECURSE
  "../bench/ablation_prefetcher"
  "../bench/ablation_prefetcher.pdb"
  "CMakeFiles/ablation_prefetcher.dir/ablation_prefetcher.cpp.o"
  "CMakeFiles/ablation_prefetcher.dir/ablation_prefetcher.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_prefetcher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
