
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_prefetcher.cpp" "bench-build/CMakeFiles/ablation_prefetcher.dir/ablation_prefetcher.cpp.o" "gcc" "bench-build/CMakeFiles/ablation_prefetcher.dir/ablation_prefetcher.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench-build/CMakeFiles/opm_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/opm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/opm_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/opm_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/opm_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/opm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/dense/CMakeFiles/opm_dense.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/opm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
