file(REMOVE_RECURSE
  "../bench/fig27_power_knl"
  "../bench/fig27_power_knl.pdb"
  "CMakeFiles/fig27_power_knl.dir/fig27_power_knl.cpp.o"
  "CMakeFiles/fig27_power_knl.dir/fig27_power_knl.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig27_power_knl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
