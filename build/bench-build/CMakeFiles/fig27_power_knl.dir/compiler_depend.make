# Empty compiler generated dependencies file for fig27_power_knl.
# This may be replaced when dependencies are built.
