# Empty dependencies file for ablation_nt_stores.
# This may be replaced when dependencies are built.
