file(REMOVE_RECURSE
  "../bench/ablation_nt_stores"
  "../bench/ablation_nt_stores.pdb"
  "CMakeFiles/ablation_nt_stores.dir/ablation_nt_stores.cpp.o"
  "CMakeFiles/ablation_nt_stores.dir/ablation_nt_stores.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_nt_stores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
