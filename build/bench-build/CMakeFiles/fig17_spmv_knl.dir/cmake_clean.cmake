file(REMOVE_RECURSE
  "../bench/fig17_spmv_knl"
  "../bench/fig17_spmv_knl.pdb"
  "CMakeFiles/fig17_spmv_knl.dir/fig17_spmv_knl.cpp.o"
  "CMakeFiles/fig17_spmv_knl.dir/fig17_spmv_knl.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_spmv_knl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
