# Empty dependencies file for fig17_spmv_knl.
# This may be replaced when dependencies are built.
