file(REMOVE_RECURSE
  "../bench/fig11_sptrsv_broadwell"
  "../bench/fig11_sptrsv_broadwell.pdb"
  "CMakeFiles/fig11_sptrsv_broadwell.dir/fig11_sptrsv_broadwell.cpp.o"
  "CMakeFiles/fig11_sptrsv_broadwell.dir/fig11_sptrsv_broadwell.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_sptrsv_broadwell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
