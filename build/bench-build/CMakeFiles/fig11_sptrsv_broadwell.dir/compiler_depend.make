# Empty compiler generated dependencies file for fig11_sptrsv_broadwell.
# This may be replaced when dependencies are built.
