# Empty dependencies file for fig09_spmv_broadwell.
# This may be replaced when dependencies are built.
