file(REMOVE_RECURSE
  "../bench/fig09_spmv_broadwell"
  "../bench/fig09_spmv_broadwell.pdb"
  "CMakeFiles/fig09_spmv_broadwell.dir/fig09_spmv_broadwell.cpp.o"
  "CMakeFiles/fig09_spmv_broadwell.dir/fig09_spmv_broadwell.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_spmv_broadwell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
