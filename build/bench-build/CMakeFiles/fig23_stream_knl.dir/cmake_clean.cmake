file(REMOVE_RECURSE
  "../bench/fig23_stream_knl"
  "../bench/fig23_stream_knl.pdb"
  "CMakeFiles/fig23_stream_knl.dir/fig23_stream_knl.cpp.o"
  "CMakeFiles/fig23_stream_knl.dir/fig23_stream_knl.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig23_stream_knl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
