# Empty compiler generated dependencies file for fig23_stream_knl.
# This may be replaced when dependencies are built.
