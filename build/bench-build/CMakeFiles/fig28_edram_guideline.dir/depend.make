# Empty dependencies file for fig28_edram_guideline.
# This may be replaced when dependencies are built.
