file(REMOVE_RECURSE
  "../bench/fig28_edram_guideline"
  "../bench/fig28_edram_guideline.pdb"
  "CMakeFiles/fig28_edram_guideline.dir/fig28_edram_guideline.cpp.o"
  "CMakeFiles/fig28_edram_guideline.dir/fig28_edram_guideline.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig28_edram_guideline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
