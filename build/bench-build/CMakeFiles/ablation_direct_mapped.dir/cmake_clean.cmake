file(REMOVE_RECURSE
  "../bench/ablation_direct_mapped"
  "../bench/ablation_direct_mapped.pdb"
  "CMakeFiles/ablation_direct_mapped.dir/ablation_direct_mapped.cpp.o"
  "CMakeFiles/ablation_direct_mapped.dir/ablation_direct_mapped.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_direct_mapped.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
