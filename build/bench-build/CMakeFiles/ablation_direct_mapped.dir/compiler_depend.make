# Empty compiler generated dependencies file for ablation_direct_mapped.
# This may be replaced when dependencies are built.
