file(REMOVE_RECURSE
  "../bench/fig01_gemm_density"
  "../bench/fig01_gemm_density.pdb"
  "CMakeFiles/fig01_gemm_density.dir/fig01_gemm_density.cpp.o"
  "CMakeFiles/fig01_gemm_density.dir/fig01_gemm_density.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_gemm_density.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
