# Empty dependencies file for fig01_gemm_density.
# This may be replaced when dependencies are built.
