file(REMOVE_RECURSE
  "../bench/ablation_mlp_ramp"
  "../bench/ablation_mlp_ramp.pdb"
  "CMakeFiles/ablation_mlp_ramp.dir/ablation_mlp_ramp.cpp.o"
  "CMakeFiles/ablation_mlp_ramp.dir/ablation_mlp_ramp.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mlp_ramp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
