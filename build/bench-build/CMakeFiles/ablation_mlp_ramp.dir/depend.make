# Empty dependencies file for ablation_mlp_ramp.
# This may be replaced when dependencies are built.
