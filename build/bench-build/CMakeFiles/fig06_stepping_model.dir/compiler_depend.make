# Empty compiler generated dependencies file for fig06_stepping_model.
# This may be replaced when dependencies are built.
