file(REMOVE_RECURSE
  "CMakeFiles/opm_advisor.dir/opm_advisor.cpp.o"
  "CMakeFiles/opm_advisor.dir/opm_advisor.cpp.o.d"
  "opm_advisor"
  "opm_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opm_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
