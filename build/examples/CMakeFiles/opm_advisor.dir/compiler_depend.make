# Empty compiler generated dependencies file for opm_advisor.
# This may be replaced when dependencies are built.
