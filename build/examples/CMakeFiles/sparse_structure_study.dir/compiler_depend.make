# Empty compiler generated dependencies file for sparse_structure_study.
# This may be replaced when dependencies are built.
