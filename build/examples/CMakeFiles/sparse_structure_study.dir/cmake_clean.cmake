file(REMOVE_RECURSE
  "CMakeFiles/sparse_structure_study.dir/sparse_structure_study.cpp.o"
  "CMakeFiles/sparse_structure_study.dir/sparse_structure_study.cpp.o.d"
  "sparse_structure_study"
  "sparse_structure_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_structure_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
