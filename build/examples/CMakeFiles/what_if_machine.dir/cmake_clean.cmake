file(REMOVE_RECURSE
  "CMakeFiles/what_if_machine.dir/what_if_machine.cpp.o"
  "CMakeFiles/what_if_machine.dir/what_if_machine.cpp.o.d"
  "what_if_machine"
  "what_if_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/what_if_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
