# Empty compiler generated dependencies file for what_if_machine.
# This may be replaced when dependencies are built.
