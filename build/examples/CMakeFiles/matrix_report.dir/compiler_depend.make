# Empty compiler generated dependencies file for matrix_report.
# This may be replaced when dependencies are built.
