file(REMOVE_RECURSE
  "CMakeFiles/matrix_report.dir/matrix_report.cpp.o"
  "CMakeFiles/matrix_report.dir/matrix_report.cpp.o.d"
  "matrix_report"
  "matrix_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matrix_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
