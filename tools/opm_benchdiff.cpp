#include <iostream>
#include <string>
#include <vector>

#include "benchdiff.hpp"

int main(int argc, char** argv) {
  return opm::benchdiff::run(std::vector<std::string>(argv + 1, argv + argc),
                             std::cout, std::cerr);
}
