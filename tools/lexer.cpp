#include "lexer.hpp"

#include <cctype>

namespace opm::lex {

namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_digit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

}  // namespace

Source lex(const std::string& content) {
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };

  Source out;
  Line cur;
  State state = State::kCode;
  std::string raw_delim;      // kRawString: the ")delim\"" terminator
  std::size_t line_no = 1;

  Token tok;                  // the identifier/number/string/char being built
  bool tok_open = false;

  auto flush_tok = [&] {
    if (tok_open) {
      out.tokens.push_back(tok);
      tok = Token{};
      tok_open = false;
    }
  };
  auto open_tok = [&](TokenKind kind) {
    flush_tok();
    tok.kind = kind;
    tok.text.clear();
    tok.line = line_no;
    tok_open = true;
  };
  auto punct = [&](char c) {
    flush_tok();
    out.tokens.push_back(Token{TokenKind::kPunct, std::string(1, c), line_no});
  };
  auto end_line = [&] {
    out.lines.push_back(std::move(cur));
    cur = Line{};
    ++line_no;
  };

  const std::size_t n = content.size();
  for (std::size_t i = 0; i < n; ++i) {
    const char c = content[i];
    if (c == '\n') {
      if (state == State::kCode) flush_tok();
      if (state == State::kLineComment) state = State::kCode;
      end_line();
      continue;
    }
    cur.raw.push_back(c);
    switch (state) {
      case State::kLineComment:
        cur.line_comment.push_back(c);
        break;
      case State::kBlockComment:
        if (c == '*' && i + 1 < n && content[i + 1] == '/') {
          ++i;
          cur.raw.push_back('/');
          state = State::kCode;
        }
        break;
      case State::kString:
        if (c == '\\' && i + 1 < n) {
          ++i;
          if (content[i] == '\n') {  // escaped newline inside a literal
            end_line();
          } else {
            cur.raw.push_back(content[i]);
            cur.strings.push_back(content[i]);
            tok.text.push_back(content[i]);
          }
        } else if (c == '"') {
          cur.code.push_back('"');
          flush_tok();
          state = State::kCode;
        } else {
          cur.strings.push_back(c);
          tok.text.push_back(c);
        }
        break;
      case State::kChar:
        if (c == '\\' && i + 1 < n) {
          ++i;
          cur.raw.push_back(content[i]);
          tok.text.push_back(content[i]);
        } else if (c == '\'') {
          cur.code.push_back('\'');
          flush_tok();
          state = State::kCode;
        } else {
          tok.text.push_back(c);
        }
        break;
      case State::kRawString:
        cur.strings.push_back(c);
        tok.text.push_back(c);
        if (c == '"' && tok.text.size() >= raw_delim.size()) {
          // Did we just consume ")delim\"" ? The terminator never spans
          // lines (delimiters cannot contain newlines), so the tail of
          // both the token text and this line's strings hold it whole.
          const std::string& s = tok.text;
          if (s.compare(s.size() - raw_delim.size(), raw_delim.size(), raw_delim) == 0) {
            tok.text.erase(tok.text.size() - raw_delim.size());
            cur.strings.erase(cur.strings.size() - raw_delim.size());
            cur.code.push_back('"');
            flush_tok();
            state = State::kCode;
          }
        }
        break;
      case State::kCode:
        // Token continuation first: identifiers, and the number shapes
        // that would otherwise confuse the classifier (digit separators,
        // hex digits, exponent signs).
        if (tok_open && tok.kind == TokenKind::kIdentifier && is_ident_char(c)) {
          tok.text.push_back(c);
          cur.code.push_back(c);
          break;
        }
        if (tok_open && tok.kind == TokenKind::kNumber) {
          const char prev = tok.text.empty() ? '\0' : tok.text.back();
          const bool exp_sign =
              (c == '+' || c == '-') &&
              (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P');
          const bool separator = c == '\'' && is_digit(prev) && i + 1 < n &&
                                 (is_digit(content[i + 1]) ||
                                  std::isxdigit(static_cast<unsigned char>(content[i + 1])));
          if (is_ident_char(c) || c == '.' || exp_sign || separator) {
            tok.text.push_back(c);
            cur.code.push_back(c);
            break;
          }
        }
        if (c == '/' && i + 1 < n && content[i + 1] == '/') {
          flush_tok();
          state = State::kLineComment;
          cur.raw.push_back('/');
          ++i;
        } else if (c == '/' && i + 1 < n && content[i + 1] == '*') {
          flush_tok();
          state = State::kBlockComment;
          cur.raw.push_back('*');
          ++i;
        } else if (c == '#' &&
                   cur.code.find_first_not_of(" \t") == std::string::npos) {
          // Start of a preprocessor directive. #include gets its path
          // captured (and collapsed out of the code text, so "<time.h>"
          // never reads as code); everything else lexes normally.
          flush_tok();
          std::size_t j = i + 1;
          while (j < n && (content[j] == ' ' || content[j] == '\t')) ++j;
          std::size_t w = j;
          while (w < n && is_ident_char(content[w])) ++w;
          if (content.compare(j, w - j, "include") == 0 && w > j) {
            std::size_t p = w;
            while (p < n && (content[p] == ' ' || content[p] == '\t')) ++p;
            if (p < n && (content[p] == '"' || content[p] == '<')) {
              const char close = content[p] == '"' ? '"' : '>';
              std::size_t e = p + 1;
              while (e < n && content[e] != close && content[e] != '\n') ++e;
              if (e < n && content[e] == close) {
                Include inc;
                inc.path = content.substr(p + 1, e - p - 1);
                inc.angled = close == '>';
                inc.line = line_no;
                out.includes.push_back(std::move(inc));
                // Collapse: code keeps the directive shape, not the path.
                for (std::size_t k = i; k < p; ++k) cur.code.push_back(content[k]);
                cur.code.push_back(content[p]);
                cur.code.push_back(close);
                for (std::size_t k = i + 1; k <= e; ++k) cur.raw.push_back(content[k]);
                i = e;
                break;
              }
            }
          }
          cur.code.push_back('#');
          punct('#');
        } else if (c == '"') {
          const bool raw_literal =
              i > 0 && content[i - 1] == 'R' &&
              (i < 2 || !is_ident_char(content[i - 2]) || content[i - 2] == 'u' ||
               content[i - 2] == 'U' || content[i - 2] == 'L' || content[i - 2] == '8');
          cur.code.push_back('"');
          if (raw_literal) {
            // The R (with any encoding prefix) is the still-open
            // identifier token; drop it — the string token carries the value.
            if (tok_open && tok.kind == TokenKind::kIdentifier &&
                !tok.text.empty() && tok.text.back() == 'R') {
              tok_open = false;
              tok = Token{};
            }
            raw_delim.assign(1, ')');
            std::size_t j = i + 1;
            while (j < n && content[j] != '(' && content[j] != '\n' &&
                   raw_delim.size() < 18) {
              raw_delim.push_back(content[j]);
              cur.raw.push_back(content[j]);
              ++j;
            }
            raw_delim.push_back('"');
            if (j < n && content[j] == '(') cur.raw.push_back('(');
            i = j;  // consumed through '('
            open_tok(TokenKind::kString);
            state = State::kRawString;
          } else {
            // An encoding-prefix identifier (u8, L, ...) directly before
            // the quote belongs to the literal, not the code.
            if (tok_open && tok.kind == TokenKind::kIdentifier &&
                (tok.text == "u8" || tok.text == "u" || tok.text == "U" || tok.text == "L")) {
              tok_open = false;
              tok = Token{};
            }
            open_tok(TokenKind::kString);
            state = State::kString;
          }
        } else if (c == '\'') {
          // Digit separators (1'000'000) are handled by the number
          // continuation above; a quote after a non-number is a char literal.
          cur.code.push_back('\'');
          open_tok(TokenKind::kChar);
          state = State::kChar;
        } else if (is_ident_start(c)) {
          open_tok(TokenKind::kIdentifier);
          tok.text.push_back(c);
          cur.code.push_back(c);
        } else if (is_digit(c) ||
                   (c == '.' && i + 1 < n && is_digit(content[i + 1]) &&
                    !(tok_open && tok.kind == TokenKind::kNumber))) {
          open_tok(TokenKind::kNumber);
          tok.text.push_back(c);
          cur.code.push_back(c);
        } else {
          cur.code.push_back(c);
          if (c != ' ' && c != '\t' && c != '\r' && c != '\f' && c != '\v') punct(c);
          else flush_tok();
        }
        break;
    }
  }
  if (state == State::kCode) flush_tok();
  else if (tok_open) out.tokens.push_back(tok);  // unterminated literal: keep what we saw
  out.lines.push_back(std::move(cur));
  return out;
}

}  // namespace opm::lex
