#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "util/bench_report.hpp"

/// opm_benchdiff — the trajectory gate behind the `perf` CI job.
///
/// Compares a fresh BENCH_<name>.json (util::BenchReport, the opm-bench
/// schema) against the committed baseline and fails only on a
/// *statistically meaningful* regression: the harmful-direction relative
/// delta of each metric's median must exceed a CV-aware tolerance,
///
///     tolerance = max(rel_floor, k * max(cv_base, cv_cur, cv_floor))
///
/// so a noisy metric (high run-to-run CV) earns a wide band and a stable
/// one is held tight. Absolute thresholds scattered through harnesses are
/// sanity floors; this diff against the committed trajectory is the real
/// regression contract (docs/MODEL.md §12).
///
/// Coverage is part of the contract in both directions: a baseline
/// metric missing from the current report fails (something stopped being
/// measured), and a current metric absent from the baseline fails too
/// (the harness grew a metric the committed trajectory does not gate —
/// a stale baseline). `--allow-new` downgrades the latter to a note for
/// intentional transitions; the durable fix is `--update-baseline`.
///
/// Exit-code contract (mirrors opm_lint, pinned by tests/test_benchdiff):
///   0  every baseline metric present and within tolerance (improvements
///      included — they print, they never fail)
///   1  at least one regression, baseline metric missing from current,
///      or current metric uncovered by the baseline (unless --allow-new)
///   2  structural incompatibility: unparsable/invalid file, schema
///      version skew, bench-name mismatch, knob set or value mismatch,
///      unit mismatch, usage error
namespace opm::benchdiff {

struct Tolerance {
  double k = 3.0;          ///< CV multiplier
  double rel_floor = 0.05; ///< minimum tolerated relative delta
  double cv_floor = 0.02;  ///< CV assumed when measured CV is smaller
};

enum class Status {
  kOk,          ///< within tolerance
  kImproved,    ///< beyond tolerance in the *helpful* direction
  kRegression,  ///< beyond tolerance in the harmful direction
  kMissing,     ///< baseline metric absent from the current report
  kUncovered,   ///< current metric absent from the baseline (stale baseline)
};

struct MetricDiff {
  std::string name;
  double base_median = 0.0;
  double cur_median = 0.0;
  /// Relative delta of medians, signed so that positive = harmful
  /// (slower for lower-is-better, less throughput for higher-is-better).
  double rel_delta = 0.0;
  double tolerance = 0.0;
  Status status = Status::kOk;

  bool operator==(const MetricDiff&) const = default;
};

struct DiffResult {
  std::vector<MetricDiff> rows;       ///< one per baseline metric, in order
  std::vector<std::string> errors;    ///< structural incompatibilities
  std::vector<std::string> notes;     ///< informational (new metrics, ...)

  bool structural() const { return !errors.empty(); }
  bool regressed() const;
  /// 0 clean, 1 regression/missing, 2 structural.
  int exit_code() const;
};

/// Pure comparison — no IO, so tests can drive it with synthetic reports.
/// `allow_new` downgrades uncovered current metrics to notes.
DiffResult diff_reports(const util::BenchReport& base, const util::BenchReport& cur,
                        const Tolerance& tol = {}, bool allow_new = false);

/// CLI entry point (main() is a one-liner around this, so tests can pin
/// the exit-code contract). Usage:
///   opm_benchdiff [--k=X] [--rel-floor=X] [--cv-floor=X] [--allow-new]
///                 BASELINE CURRENT
///   opm_benchdiff --update-baseline BASELINE CURRENT
///   opm_benchdiff --validate FILE...
/// Diagnostics and the per-metric table go to `out`; usage/IO errors to
/// `err`.
int run(const std::vector<std::string>& args, std::ostream& out, std::ostream& err);

}  // namespace opm::benchdiff
