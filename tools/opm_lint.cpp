#include <iostream>
#include <string>
#include <vector>

#include "lint.hpp"

int main(int argc, char** argv) {
  return opm::lint::run(std::vector<std::string>(argv + 1, argv + argc),
                        std::cout, std::cerr);
}
