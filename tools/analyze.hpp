#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

/// opm_analyze — token-based cross-file static analysis (docs/MODEL.md §15).
///
/// opm_lint (tools/lint.*) checks per-line invariants inside one file.
/// The invariants that every PR since 1 has been adding *by convention*
/// are cross-file: lock acquisition order spans translation units, the
/// serve error-kind taxonomy spans protocol code, docs, and tests, dotted
/// metric names span src/ producers and bench/ci consumers, and the
/// util → {sim,dense,sparse,kernels,trace} → core → {serve,advise}
/// layering spans the whole include graph. opm_analyze makes those
/// mechanical: it lexes every source with the shared tokenizer
/// (tools/lexer.*) and runs four semantic passes over the combined
/// token streams:
///
///   lock-order   harvest util::MutexLock acquisition scopes across all
///                annotated files, build the global lock-order graph
///                (edge A→B when B is acquired while A is held), and fail
///                on cycles — static deadlock detection for ALL
///                interleavings, complementing TSan which only sees the
///                interleavings a test happens to exercise
///   protocol     the serve error-kind taxonomy must be exhaustive: every
///                kind constructed in src/serve must appear in the
///                protocol.hpp taxonomy comment, in docs/MODEL.md, and in
///                a string literal of tests/test_serve.cpp or
///                tests/test_router.cpp; every kind the router/loadgen
///                compare against must actually exist; the router must
///                handle "redirect"
///   metrics      every dotted counter name is well-formed, written by
///                exactly one src/ file (its owner), never a near-miss
///                (edit distance 1) of a sibling, and every name
///                referenced from bench gates, tools, tests, or
///                scripts/ci.sh resolves to a defined counter — catching
///                "cache.missses"-style typos that today read as zero
///   layering     include-graph construction with file-level cycle
///                detection and the architecture rules enforced
///                (util includes only util; sim never core/serve/advise;
///                core never serve/advise; advise never serve; src never
///                bench/tests/tools/examples)
///
/// Findings carry a stable (pass, key) identity; a checked-in suppression
/// baseline (one "pass key" pair per line, '#' comments) grandfathers
/// documented edges without hiding new ones — a baseline entry that
/// matches nothing is itself a finding, so the file can only shrink.
///
/// Exit contract (same as opm_benchdiff): 0 clean, 1 findings, 2
/// usage/IO error.
namespace opm::analyze {

struct Finding {
  std::string file;     ///< path as scanned (repo-root-relative)
  std::size_t line;     ///< 1-based; 0 = whole-file / cross-file
  std::string pass;     ///< "lock-order" | "protocol" | "metrics" | "layering" | "baseline" | "io"
  std::string key;      ///< stable suppression key (no whitespace)
  std::string message;

  bool operator==(const Finding&) const = default;
};

struct PassInfo {
  const char* id;
  const char* summary;
};

/// The pass table, in execution order (stable IDs; docs/MODEL.md §15).
const std::vector<PassInfo>& passes();

/// One input file. Non-C++ paths (docs/MODEL.md, scripts/ci.sh) take part
/// as reference text: the protocol pass looks kinds up in MODEL.md, the
/// metrics pass scans ci.sh for dotted counter names.
struct SourceFile {
  std::string path;
  std::string content;
};

/// Per-pass wall time + finding count for the CI job summary.
struct PassTiming {
  std::string pass;
  double seconds = 0.0;
  std::size_t findings = 0;
};

struct Report {
  std::vector<Finding> findings;    ///< after baseline subtraction, sorted
  std::size_t suppressed = 0;       ///< findings a baseline entry absorbed
  std::vector<PassTiming> timing;   ///< one entry per executed pass
};

/// Runs every pass over in-memory sources. `baseline` is the suppression
/// file content ("" = empty baseline). `only_pass` restricts execution to
/// one pass id ("" = all). Stale baseline entries surface as "baseline"
/// findings.
Report analyze_sources(const std::vector<SourceFile>& sources,
                       const std::string& baseline = {},
                       const std::string& only_pass = {});

/// Loads *.hpp/*.h/*.cpp/*.cc under the roots (files or directories,
/// sorted for determinism) plus any explicitly-listed non-C++ files, then
/// analyzes. Unreadable paths produce "io" findings.
Report analyze_paths(const std::vector<std::string>& roots,
                     const std::string& baseline_path = {},
                     const std::string& only_pass = {});

/// CLI entry point (main() is a one-liner around this):
///   opm_analyze [--format=text|json] [--baseline=FILE] [--pass=ID]
///               [--list-passes] <path>...
/// Text mode prints file:line: [pass] message lines, per-pass timing, and
/// a summary; JSON mode prints one machine-readable object.
/// Exit: 0 clean, 1 findings, 2 usage/IO error.
int run(const std::vector<std::string>& args, std::ostream& out, std::ostream& err);

}  // namespace opm::analyze
