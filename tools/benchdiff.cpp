#include "benchdiff.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <string_view>

#include "util/format.hpp"

namespace opm::benchdiff {

namespace {

const char* status_label(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kImproved: return "improved";
    case Status::kRegression: return "REGRESSION";
    case Status::kMissing: return "MISSING";
    case Status::kUncovered: return "UNCOVERED";
  }
  return "?";
}

std::string pct(double v) { return util::format_fixed(v * 100.0, 1) + "%"; }

/// Signed percent with explicit sign, harmful direction positive.
std::string signed_pct(double v) {
  if (v == 0.0) v = 0.0;  // collapse -0.0 so it prints "+0.0%"
  return (v >= 0.0 ? "+" : "") + pct(v);
}

}  // namespace

bool DiffResult::regressed() const {
  return std::any_of(rows.begin(), rows.end(), [](const MetricDiff& r) {
    return r.status == Status::kRegression || r.status == Status::kMissing ||
           r.status == Status::kUncovered;
  });
}

int DiffResult::exit_code() const {
  if (structural()) return 2;
  return regressed() ? 1 : 0;
}

DiffResult diff_reports(const util::BenchReport& base, const util::BenchReport& cur,
                        const Tolerance& tol, bool allow_new) {
  DiffResult result;

  if (base.bench != cur.bench) {
    result.errors.push_back("bench-name mismatch: baseline is '" + base.bench +
                            "', current is '" + cur.bench + "'");
    return result;
  }

  // Knobs shape the measurement; a report from a different run shape is
  // not comparable. Order-insensitive, but set and values must agree.
  for (const auto& [name, value] : base.knobs) {
    const auto it = std::find_if(cur.knobs.begin(), cur.knobs.end(),
                                 [&](const auto& kv) { return kv.first == name; });
    if (it == cur.knobs.end()) {
      result.errors.push_back("knob '" + name + "' missing from current report");
    } else if (it->second != value) {
      result.errors.push_back("knob '" + name + "' mismatch: baseline " +
                              util::format_fixed(value, 6) + ", current " +
                              util::format_fixed(it->second, 6));
    }
  }
  for (const auto& [name, value] : cur.knobs) {
    if (std::find_if(base.knobs.begin(), base.knobs.end(), [&](const auto& kv) {
          return kv.first == name;
        }) == base.knobs.end()) {
      result.errors.push_back("knob '" + name + "' missing from baseline report");
    }
  }
  if (result.structural()) return result;

  for (const auto& bm : base.metrics) {
    MetricDiff row;
    row.name = bm.name;
    row.base_median = bm.summary.median;

    const util::BenchMetric* cm = cur.find_metric(bm.name);
    if (cm == nullptr) {
      row.status = Status::kMissing;
      result.rows.push_back(std::move(row));
      continue;
    }
    if (cm->unit != bm.unit) {
      result.errors.push_back("metric '" + bm.name + "' unit mismatch: baseline '" +
                              bm.unit + "', current '" + cm->unit + "'");
      continue;
    }
    if (cm->higher_is_better != bm.higher_is_better) {
      result.errors.push_back("metric '" + bm.name + "' direction mismatch");
      continue;
    }

    row.cur_median = cm->summary.median;
    const double cv = std::max({bm.summary.cv, cm->summary.cv, tol.cv_floor});
    row.tolerance = std::max(tol.rel_floor, tol.k * cv);

    if (bm.summary.median != 0.0) {
      const double raw = (cm->summary.median - bm.summary.median) /
                         std::abs(bm.summary.median);
      row.rel_delta = bm.higher_is_better ? -raw : raw;
    } else {
      // A zero baseline median carries no scale; any nonzero current value
      // in the harmful direction counts as an unbounded regression.
      const bool harmful = bm.higher_is_better ? cm->summary.median < 0.0
                                               : cm->summary.median > 0.0;
      row.rel_delta = cm->summary.median == 0.0 ? 0.0
                      : harmful                 ? row.tolerance + 1.0
                                                : -(row.tolerance + 1.0);
    }

    if (row.rel_delta > row.tolerance) {
      row.status = Status::kRegression;
    } else if (row.rel_delta < -row.tolerance) {
      row.status = Status::kImproved;
    }
    result.rows.push_back(std::move(row));
  }

  // Uncovered current metrics: the harness measures something the
  // committed baseline does not gate. That is a stale baseline — a
  // failure by default, so new metrics cannot silently ride along
  // ungated; --allow-new waives it for an intentional transition.
  for (const auto& cm : cur.metrics) {
    if (base.find_metric(cm.name) != nullptr) continue;
    if (allow_new) {
      result.notes.push_back("new metric '" + cm.name +
                             "' (not in baseline; commit an updated baseline to gate it)");
    } else {
      MetricDiff row;
      row.name = cm.name;
      row.cur_median = cm.summary.median;
      row.status = Status::kUncovered;
      result.rows.push_back(std::move(row));
    }
  }
  return result;
}

namespace {

void print_result(const DiffResult& result, const std::string& bench, std::ostream& out) {
  for (const auto& row : result.rows) {
    out << "  " << util::pad(status_label(row.status), 12) << util::pad(row.name, 34);
    if (row.status == Status::kMissing) {
      out << "baseline median " << util::format_fixed(row.base_median, 3)
          << ", absent from current report";
    } else if (row.status == Status::kUncovered) {
      out << "current median " << util::format_fixed(row.cur_median, 3)
          << ", absent from baseline (--update-baseline to gate it, "
             "--allow-new to waive)";
    } else {
      out << util::pad(signed_pct(row.rel_delta), 9) << "(tol " << pct(row.tolerance)
          << ", median " << util::format_fixed(row.base_median, 3) << " -> "
          << util::format_fixed(row.cur_median, 3) << ")";
    }
    out << "\n";
  }
  for (const auto& note : result.notes) out << "  note        " << note << "\n";
  const auto count = [&](Status s) {
    return std::count_if(result.rows.begin(), result.rows.end(),
                         [&](const MetricDiff& r) { return r.status == s; });
  };
  out << "opm_benchdiff [" << bench << "]: " << result.rows.size() << " metric(s), "
      << count(Status::kRegression) << " regression(s), " << count(Status::kMissing)
      << " missing, " << count(Status::kUncovered) << " uncovered, "
      << count(Status::kImproved) << " improved\n";
}

bool parse_double_flag(std::string_view arg, std::string_view prefix, double* value) {
  if (arg.substr(0, prefix.size()) != prefix) return false;
  try {
    *value = std::stod(std::string(arg.substr(prefix.size())));
  } catch (...) {
    return false;
  }
  return true;
}

int usage(std::ostream& err) {
  err << "usage: opm_benchdiff [--k=X] [--rel-floor=X] [--cv-floor=X] [--allow-new]\n"
         "                     BASELINE CURRENT\n"
         "       opm_benchdiff --update-baseline BASELINE CURRENT\n"
         "       opm_benchdiff --validate FILE...\n";
  return 2;
}

}  // namespace

int run(const std::vector<std::string>& args, std::ostream& out, std::ostream& err) {
  Tolerance tol;
  bool update_baseline = false;
  bool validate = false;
  bool allow_new = false;
  std::vector<std::string> paths;

  for (const auto& arg : args) {
    if (arg == "--update-baseline") {
      update_baseline = true;
    } else if (arg == "--validate") {
      validate = true;
    } else if (arg == "--allow-new") {
      allow_new = true;
    } else if (arg.rfind("--k=", 0) == 0 || arg.rfind("--rel-floor=", 0) == 0 ||
               arg.rfind("--cv-floor=", 0) == 0) {
      const bool ok = parse_double_flag(arg, "--k=", &tol.k) ||
                      parse_double_flag(arg, "--rel-floor=", &tol.rel_floor) ||
                      parse_double_flag(arg, "--cv-floor=", &tol.cv_floor);
      if (!ok) {
        err << "opm_benchdiff: bad numeric flag '" << arg << "'\n";
        return 2;
      }
    } else if (arg.rfind("--", 0) == 0) {
      err << "opm_benchdiff: unknown flag '" << arg << "'\n";
      return usage(err);
    } else {
      paths.push_back(arg);
    }
  }

  if (validate) {
    if (update_baseline || paths.empty()) return usage(err);
    bool all_ok = true;
    for (const auto& path : paths) {
      std::string error;
      const auto report = util::BenchReport::load_file(path, &error);
      if (!report) {
        err << "opm_benchdiff: " << path << ": " << error << "\n";
        all_ok = false;
        continue;
      }
      out << "  valid       " << path << " (bench '" << report->bench << "', "
          << report->metrics.size() << " metric(s), schema " << util::kBenchSchemaName
          << " v" << util::kBenchSchemaVersion << ")\n";
    }
    return all_ok ? 0 : 2;
  }

  if (paths.size() != 2) return usage(err);
  const std::string& baseline_path = paths[0];
  const std::string& current_path = paths[1];

  std::string error;
  const auto current = util::BenchReport::load_file(current_path, &error);
  if (!current) {
    err << "opm_benchdiff: " << current_path << ": " << error << "\n";
    return 2;
  }

  if (update_baseline) {
    if (!current->write_file(baseline_path, &error)) {
      err << "opm_benchdiff: " << baseline_path << ": " << error << "\n";
      return 2;
    }
    out << "opm_benchdiff: baseline " << baseline_path << " updated from "
        << current_path << " (bench '" << current->bench << "', "
        << current->metrics.size() << " metric(s))\n";
    return 0;
  }

  const auto baseline = util::BenchReport::load_file(baseline_path, &error);
  if (!baseline) {
    err << "opm_benchdiff: " << baseline_path << ": " << error << "\n";
    return 2;
  }

  const DiffResult result = diff_reports(*baseline, *current, tol, allow_new);
  for (const auto& e : result.errors) err << "opm_benchdiff: " << e << "\n";
  print_result(result, baseline->bench, out);
  return result.exit_code();
}

}  // namespace opm::benchdiff
