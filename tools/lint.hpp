#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

/// opm_lint — the project-invariant checker behind the `static` CI job.
///
/// The repo's determinism and concurrency disciplines are mostly social
/// contracts ("seeded RNG only", "canonical %a serialization", "every
/// mutex-protected field is annotated"). This library makes them
/// mechanical: a token-level scan over src/ bench/ tests/ that needs no
/// compiler, no external dependencies, and runs in milliseconds — so it
/// sits *before* the sanitizer build matrix and fails fast.
///
/// The scanner is deliberately token-level, not a parser: it strips
/// comments and string literals (tracking multi-line state), then matches
/// rule tokens against the code text (or, for the %-conversion rule,
/// against the literal text). Each rule has a stable ID, a path scope, and
/// a per-line escape hatch:
///
///     do_risky_thing();  // opm-lint: allow(rule-id[,rule-id...]) — why
///
/// Rules (the authoritative table lives in docs/MODEL.md §10):
///   rng           rand()/srand()/std::random_device/time() outside
///                 util/rng — results must come from seeded generators
///   thread-ownership  raw std::thread/std::jthread outside
///                 util/thread_pool and src/serve
///   float-print   %f/%e/%g conversions or std::to_string in canonical
///                 serialization paths (must use the %a helpers)
///   guarded-mutex a class declaring a mutex member with no
///                 OPM_GUARDED_BY field in the same class
///   pragma-once   every header starts its life with #pragma once
///   no-endl       std::endl in src/ hot paths (use "\n")
namespace opm::lint {

struct Finding {
  std::string file;   ///< path as scanned (relative to the scan root)
  std::size_t line;   ///< 1-based
  std::string rule;   ///< stable rule ID
  std::string message;

  bool operator==(const Finding&) const = default;
};

struct RuleInfo {
  const char* id;
  const char* summary;
};

/// The rule table, in diagnostic order (stable IDs; see docs/MODEL.md §10).
const std::vector<RuleInfo>& rules();

/// Scans one in-memory source. `path` decides which rules apply (scoping
/// is by path substring, e.g. "util/rng." exempts the RNG implementation)
/// and is echoed into the findings.
std::vector<Finding> check_source(const std::string& path, const std::string& content);

/// Walks every *.hpp/*.h/*.cpp/*.cc under the given files-or-directories
/// (sorted, so output order is deterministic) and concatenates
/// check_source results. Unreadable paths produce an "io" finding rather
/// than a crash.
std::vector<Finding> check_paths(const std::vector<std::string>& roots);

/// CLI entry point (main() is a one-liner around this, so tests can pin
/// the exit-code contract): 0 = clean, 1 = findings, 2 = usage/IO error.
/// Findings and the summary line go to `out`; usage errors to `err`.
int run(const std::vector<std::string>& args, std::ostream& out, std::ostream& err);

}  // namespace opm::lint
