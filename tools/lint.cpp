#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <set>
#include <sstream>
#include <tuple>

#include "lexer.hpp"

namespace opm::lint {

namespace {

namespace fs = std::filesystem;

// Line classification (comment-free code text, string-literal contents,
// line-comment text) comes from the shared lexer in tools/lexer.*, the
// same one opm_analyze's semantic passes tokenize with.
using Line = lex::Line;

bool is_ident(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Rule IDs suppressed on this line via "opm-lint: allow(a,b)". Only the
/// line-comment text is consulted: a marker spelled inside a string
/// literal or a block comment is data, not a suppression.
std::set<std::string> allowed_rules(const std::string& comment) {
  std::set<std::string> out;
  const std::size_t marker = comment.find("opm-lint:");
  if (marker == std::string::npos) return out;
  const std::size_t open = comment.find("allow(", marker);
  if (open == std::string::npos) return out;
  const std::size_t close = comment.find(')', open);
  if (close == std::string::npos) return out;
  std::string ids = comment.substr(open + 6, close - open - 6);
  std::string id;
  std::istringstream is(ids);
  while (std::getline(is, id, ',')) {
    const auto b = id.find_first_not_of(" \t");
    const auto e = id.find_last_not_of(" \t");
    if (b != std::string::npos) out.insert(id.substr(b, e - b + 1));
  }
  return out;
}

// ------------------------------------------------------------ path scoping --

std::string normalized(const std::string& path) {
  std::string p = path;
  std::replace(p.begin(), p.end(), '\\', '/');
  return p;
}

bool path_has(const std::string& norm, const char* frag) {
  return norm.find(frag) != std::string::npos;
}

bool in_tree(const std::string& norm, const char* tree) {  // tree = "src"
  const std::string t = std::string(tree) + "/";
  return norm.rfind(t, 0) == 0 || norm.find("/" + t) != std::string::npos;
}

bool is_header(const std::string& norm) {
  return norm.ends_with(".hpp") || norm.ends_with(".h");
}

// -------------------------------------------------------------- token utils --

/// True when code[pos..] spells `name` as a standalone token (non-ident
/// characters, or string boundaries, on both sides).
bool token_at(const std::string& code, std::size_t pos, const std::string& name) {
  if (pos > 0 && (is_ident(code[pos - 1]) || code[pos - 1] == ':')) return false;
  const std::size_t after = pos + name.size();
  return after >= code.size() || !is_ident(code[after]);
}

/// True when code[pos..] is a call of free function `name`: bare, `::`- or
/// `std::`-qualified, but not a member (`.name(` / `->name(`) and not part
/// of a longer identifier (`wall_time(`, `time_since_epoch`).
bool free_call_at(const std::string& code, std::size_t pos, const std::string& name) {
  std::size_t after = pos + name.size();
  while (after < code.size() && (code[after] == ' ' || code[after] == '\t')) ++after;
  if (after >= code.size() || code[after] != '(') return false;
  if (pos == 0) return true;
  if (is_ident(code[pos - 1]) || code[pos - 1] == '.' || code[pos - 1] == '>') return false;
  if (code[pos - 1] != ':') return true;  // bare call after an operator/space
  // Qualified: allow only the global (`::time`) or `std::` spellings; a
  // `foo::time(...)` from some other namespace is somebody else's function.
  if (pos < 2 || code[pos - 2] != ':') return false;
  if (pos == 2) return true;  // line starts with ::name
  const std::size_t q = pos - 2;
  if (q >= 3 && code.compare(q - 3, 3, "std") == 0 &&
      (q == 3 || !is_ident(code[q - 4])))
    return true;
  return !is_ident(code[q - 1]) && code[q - 1] != ':';
}

std::vector<std::size_t> find_all(const std::string& hay, const std::string& needle) {
  std::vector<std::size_t> out;
  for (std::size_t p = hay.find(needle); p != std::string::npos;
       p = hay.find(needle, p + 1))
    out.push_back(p);
  return out;
}

/// Matches a printf floating conversion (%f/%e/%g with optional flags,
/// width, precision, length) in string-literal text. `%a` stays legal: it
/// is the canonical bit-exact serialization this rule funnels code toward.
bool has_float_conversion(const std::string& text) {
  for (std::size_t i = 0; i + 1 < text.size(); ++i) {
    if (text[i] != '%') continue;
    if (text[i + 1] == '%') {
      ++i;
      continue;
    }
    std::size_t j = i + 1;
    while (j < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[j])) != 0 ||
            text[j] == '-' || text[j] == '+' || text[j] == ' ' || text[j] == '#' ||
            text[j] == '.' || text[j] == '*' || text[j] == 'l' || text[j] == 'h' ||
            text[j] == 'L'))
      ++j;
    if (j < text.size() && (text[j] == 'f' || text[j] == 'F' || text[j] == 'e' ||
                            text[j] == 'E' || text[j] == 'g' || text[j] == 'G'))
      return true;
  }
  return false;
}

// -------------------------------------------------------------------- rules --

const char* const kRng = "rng";
const char* const kThread = "thread-ownership";
const char* const kFloatPrint = "float-print";
const char* const kGuardedMutex = "guarded-mutex";
const char* const kPragmaOnce = "pragma-once";
const char* const kNoEndl = "no-endl";

struct Sink {
  const std::string& path;
  const std::vector<Line>& lines;
  std::vector<Finding>& findings;

  void emit(std::size_t line_index, const char* rule, std::string message) {
    if (line_index < lines.size() &&
        allowed_rules(lines[line_index].line_comment).count(rule) > 0)
      return;
    findings.push_back(Finding{path, line_index + 1, rule, std::move(message)});
  }
};

void check_rng(const std::string& norm, Sink& sink) {
  if (path_has(norm, "util/rng.")) return;
  for (std::size_t li = 0; li < sink.lines.size(); ++li) {
    const std::string& code = sink.lines[li].code;
    for (const char* fn : {"rand", "srand", "time"})
      for (std::size_t p : find_all(code, fn))
        if (free_call_at(code, p, fn))
          sink.emit(li, kRng,
                    std::string(fn) + "() is nondeterministic; use the seeded "
                                      "generators in util/rng");
    for (std::size_t p : find_all(code, "random_device"))
      if (token_at(code, p, "random_device") ||
          (p >= 5 && code.compare(p - 5, 5, "std::") == 0))
        sink.emit(li, kRng,
                  "std::random_device is nondeterministic; use the seeded "
                  "generators in util/rng");
  }
}

void check_thread(const std::string& norm, Sink& sink) {
  if (path_has(norm, "util/thread_pool.") || in_tree(norm, "src/serve") ||
      path_has(norm, "src/serve/"))
    return;
  for (std::size_t li = 0; li < sink.lines.size(); ++li) {
    const std::string& code = sink.lines[li].code;
    for (const char* tok : {"std::thread", "std::jthread"})
      for (std::size_t p : find_all(code, tok)) {
        const std::size_t after = p + std::string(tok).size();
        if (after < code.size() && (is_ident(code[after]) || code[after] == ':'))
          continue;  // std::thread::hardware_concurrency etc.
        if (p > 0 && is_ident(code[p - 1])) continue;
        sink.emit(li, kThread,
                  std::string(tok) + " outside util/thread_pool and src/serve; "
                                     "route work through util::ThreadPool");
      }
  }
}

bool float_print_scope(const std::string& norm) {
  return path_has(norm, "core/sweep.") || path_has(norm, "core/experiment.") ||
         path_has(norm, "core/result_cache.") || path_has(norm, "serve/protocol.");
}

void check_float_print(const std::string& norm, Sink& sink) {
  if (!float_print_scope(norm)) return;
  for (std::size_t li = 0; li < sink.lines.size(); ++li) {
    const Line& line = sink.lines[li];
    if (has_float_conversion(line.strings))
      sink.emit(li, kFloatPrint,
                "decimal float conversion in a serialization path; use the "
                "canonical %a helpers (hex() / hex_double)");
    for (std::size_t p : find_all(line.code, "std::to_string"))
      if (token_at(line.code, p, "std::to_string"))
        sink.emit(li, kFloatPrint,
                  "std::to_string in a serialization path; floats must go "
                  "through the canonical %a helpers");
  }
}

void check_guarded_mutex(const std::string& norm, Sink& sink) {
  if (!in_tree(norm, "src")) return;
  if (path_has(norm, "util/mutex.hpp") || path_has(norm, "util/thread_safety.hpp"))
    return;

  struct Block {
    bool class_like = false;
    bool has_guard = false;
    std::vector<std::pair<std::size_t, std::string>> mutexes;  // line, type
  };
  std::vector<Block> stack;
  std::string prefix;  // statement text since the last ';' '{' '}'

  auto close_block = [&] {
    if (stack.empty()) return;
    Block b = std::move(stack.back());
    stack.pop_back();
    if (b.class_like && !b.has_guard)
      for (const auto& [line, type] : b.mutexes)
        sink.emit(line, kGuardedMutex,
                  type + " member in a class with no OPM_GUARDED_BY field; "
                         "annotate what it protects (util/thread_safety.hpp)");
  };

  for (std::size_t li = 0; li < sink.lines.size(); ++li) {
    const std::string& code = sink.lines[li].code;
    if (code.find("OPM_GUARDED_BY") != std::string::npos ||
        code.find("OPM_PT_GUARDED_BY") != std::string::npos)
      if (!stack.empty()) stack.back().has_guard = true;

    if (!stack.empty() && stack.back().class_like) {
      for (const char* type : {"std::mutex", "std::recursive_mutex",
                               "std::shared_mutex", "std::timed_mutex",
                               "util::Mutex", "Mutex"}) {
        for (std::size_t p : find_all(code, type)) {
          if (p > 0 && (is_ident(code[p - 1]) || code[p - 1] == ':')) continue;
          std::size_t j = p + std::string(type).size();
          if (j >= code.size() || (code[j] != ' ' && code[j] != '\t')) continue;
          while (j < code.size() && (code[j] == ' ' || code[j] == '\t')) ++j;
          std::size_t ident = 0;
          while (j < code.size() && is_ident(code[j])) ++j, ++ident;
          while (j < code.size() && (code[j] == ' ' || code[j] == '\t')) ++j;
          if (ident > 0 && j < code.size() && code[j] == ';')
            stack.back().mutexes.emplace_back(li, type);
        }
        if (!stack.back().mutexes.empty() && stack.back().mutexes.back().first == li)
          break;  // one hit per line is enough (avoids Mutex-inside-util::Mutex)
      }
    }

    for (char c : code) {
      if (c == '{') {
        Block b;
        for (const char* kw : {"struct", "class", "union"})
          for (std::size_t p : find_all(prefix, kw))
            if (token_at(prefix, p, kw)) b.class_like = true;
        stack.push_back(b);
        prefix.clear();
      } else if (c == '}') {
        close_block();
        prefix.clear();
      } else if (c == ';') {
        prefix.clear();
      } else {
        prefix.push_back(c);
      }
    }
    prefix.push_back(' ');  // newlines separate tokens
  }
  while (!stack.empty()) close_block();  // unbalanced file: flush anyway
}

void check_pragma_once(const std::string& norm, Sink& sink) {
  if (!is_header(norm)) return;
  for (const Line& line : sink.lines) {
    const std::size_t p = line.raw.find("#pragma");
    if (p != std::string::npos && line.raw.find("once", p) != std::string::npos)
      return;
  }
  sink.emit(0, kPragmaOnce, "header is missing #pragma once");
}

void check_no_endl(const std::string& norm, Sink& sink) {
  if (!in_tree(norm, "src")) return;
  for (std::size_t li = 0; li < sink.lines.size(); ++li)
    for (std::size_t p : find_all(sink.lines[li].code, "std::endl"))
      if (token_at(sink.lines[li].code, p, "std::endl"))
        sink.emit(li, kNoEndl,
                  "std::endl flushes on every call; write \"\\n\" in hot paths");
}

}  // namespace

const std::vector<RuleInfo>& rules() {
  static const std::vector<RuleInfo> table = {
      {kRng, "rand()/srand()/time()/std::random_device outside util/rng"},
      {kThread, "raw std::thread outside util/thread_pool and src/serve"},
      {kFloatPrint, "%f-style or std::to_string output in canonical serialization paths"},
      {kGuardedMutex, "mutex member without an OPM_GUARDED_BY field in the same class"},
      {kPragmaOnce, "every header carries #pragma once"},
      {kNoEndl, "std::endl in src/ hot paths"},
  };
  return table;
}

std::vector<Finding> check_source(const std::string& path, const std::string& content) {
  const std::string norm = normalized(path);
  const std::vector<Line> lines = lex::lex(content).lines;
  std::vector<Finding> findings;
  Sink sink{path, lines, findings};
  check_rng(norm, sink);
  check_thread(norm, sink);
  check_float_print(norm, sink);
  check_guarded_mutex(norm, sink);
  check_pragma_once(norm, sink);
  check_no_endl(norm, sink);
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.line, a.rule) < std::tie(b.line, b.rule);
            });
  return findings;
}

std::vector<Finding> check_paths(const std::vector<std::string>& roots) {
  std::vector<Finding> findings;
  std::vector<std::string> files;
  auto keep = [](const fs::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".hpp" || ext == ".h" || ext == ".cpp" || ext == ".cc";
  };
  for (const std::string& root : roots) {
    std::error_code ec;
    if (fs::is_regular_file(root, ec)) {
      files.push_back(root);
    } else if (fs::is_directory(root, ec)) {
      for (fs::recursive_directory_iterator it(root, ec), end; it != end;
           it.increment(ec)) {
        if (ec) break;
        if (it->is_regular_file(ec) && keep(it->path()))
          files.push_back(it->path().generic_string());
      }
    } else {
      findings.push_back(Finding{root, 0, "io", "path is not a file or directory"});
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  for (const std::string& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      findings.push_back(Finding{file, 0, "io", "unreadable file"});
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    auto one = check_source(file, buf.str());
    findings.insert(findings.end(), one.begin(), one.end());
  }
  return findings;
}

int run(const std::vector<std::string>& args, std::ostream& out, std::ostream& err) {
  std::vector<std::string> roots;
  for (const std::string& a : args) {
    if (a == "--list-rules") {
      for (const RuleInfo& r : rules()) out << r.id << "\t" << r.summary << "\n";
      return 0;
    }
    if (a == "--help" || a == "-h" || a.rfind("--", 0) == 0) {
      err << "usage: opm_lint [--list-rules] <path>...\n"
             "Scans *.hpp/*.h/*.cpp/*.cc for project-invariant violations.\n"
             "Exit: 0 clean, 1 findings, 2 usage error.\n"
             "Suppress one line with: // opm-lint: allow(<rule-id>[,...])\n";
      return a == "--help" || a == "-h" ? 0 : 2;
    }
    roots.push_back(a);
  }
  if (roots.empty()) {
    err << "usage: opm_lint [--list-rules] <path>...\n";
    return 2;
  }
  const std::vector<Finding> findings = check_paths(roots);
  for (const Finding& f : findings)
    out << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message << "\n";
  if (findings.empty()) {
    out << "opm_lint: clean\n";
    return 0;
  }
  out << "opm_lint: " << findings.size() << " finding(s)\n";
  const bool io_error = std::any_of(findings.begin(), findings.end(),
                                    [](const Finding& f) { return f.rule == "io"; });
  return io_error ? 2 : 1;
}

}  // namespace opm::lint
