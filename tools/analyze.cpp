#include "analyze.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <tuple>

#include "lexer.hpp"

namespace opm::analyze {

namespace {

namespace fs = std::filesystem;

using lex::Token;
using lex::TokenKind;

// ------------------------------------------------------------------ common --

const char* const kLockOrder = "lock-order";
const char* const kProtocol = "protocol";
const char* const kMetrics = "metrics";
const char* const kLayering = "layering";

std::string normalized(const std::string& path) {
  std::string p = path;
  std::replace(p.begin(), p.end(), '\\', '/');
  return p;
}

bool is_cxx_path(const std::string& norm) {
  return norm.ends_with(".hpp") || norm.ends_with(".h") || norm.ends_with(".cpp") ||
         norm.ends_with(".cc");
}

/// One lexed input. Non-C++ inputs keep an empty token stream and are
/// consulted as raw reference text only.
struct Input {
  std::string path;   // normalized
  std::string content;
  lex::Source lx;     // C++ inputs only
  bool cxx = false;
};

/// True when `needle` occurs in `hay` delimited by non-kind characters
/// (kind alphabet: lowercase + digits + '-' + '_').
bool boundary_contains(const std::string& hay, const std::string& needle) {
  auto word = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '-' || c == '_';
  };
  for (std::size_t p = hay.find(needle); p != std::string::npos;
       p = hay.find(needle, p + 1)) {
    const bool left_ok = p == 0 || !word(hay[p - 1]);
    const std::size_t after = p + needle.size();
    const bool right_ok = after >= hay.size() || !word(hay[after]);
    if (left_ok && right_ok) return true;
  }
  return false;
}

std::size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> prev(b.size() + 1), cur(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

struct Sink {
  std::vector<Finding>* findings;
  const char* pass;

  void emit(std::string file, std::size_t line, std::string key, std::string message) {
    findings->push_back(Finding{std::move(file), line, pass, std::move(key),
                                std::move(message)});
  }
};

// -------------------------------------------------------- pass: lock-order --
//
// A token-level lock-scope walk. Within each file we track brace scopes;
// a scope opened after a class/struct head (or an out-of-line
// `Class::method(...)` head) carries the class context, a scope opened
// after a lambda introducer or `namespace` is a barrier (code inside runs
// on another call stack / has no held locks from the lexical outside).
// `util::MutexLock guard(expr);` records a lock named
// `<Class>::<expr>` (with the `impl_->member` pimpl idiom rewritten to
// `<Class>::Impl::member` so header-side and impl-side acquisitions of
// the same mutex unify). Acquiring L while H is held adds edge H→L to a
// global graph; any cycle is a potential deadlock.
//
// Token-level means approximate: distinct names are kept distinct, so
// aliasing can hide an edge (conservative: no false cycles from name
// collisions within a class, possible misses through references). The
// clang -Wthread-safety gate covers the per-acquisition proofs; this
// pass covers the cross-TU ordering TSan only samples.

struct LockEdge {
  std::string from, to;
  std::string file;
  std::size_t line = 0;
};

struct LockScan {
  std::map<std::string, std::vector<LockEdge>> edges;  // from → outgoing
  std::set<std::string> locks;
  std::size_t sites = 0;
};

void scan_locks(const Input& in, LockScan* scan) {
  const std::vector<Token>& t = in.lx.tokens;

  struct Scope {
    // A barrier stops the held-lock walk: class bodies (a lock is never
    // held across two member-function bodies), namespace bodies, and
    // lambda bodies (deferred execution on another call stack). The
    // class_name is naming context only — an out-of-line method body
    // carries one but is still an ordinary function body.
    bool barrier = false;
    std::string class_name;
    std::vector<std::string> locks;  // acquired directly in this scope
  };
  std::vector<Scope> stack;
  std::vector<const Token*> prefix;  // statement tokens since last ; { }

  auto innermost_class = [&]() -> std::string {
    for (auto it = stack.rbegin(); it != stack.rend(); ++it)
      if (!it->class_name.empty()) return it->class_name;
    return {};
  };

  auto classify_scope = [&]() -> Scope {
    Scope s;
    // class/struct/union head (but not `enum class`)?
    for (std::size_t i = 0; i < prefix.size(); ++i) {
      const Token& tok = *prefix[i];
      if (tok.kind != TokenKind::kIdentifier) continue;
      if (tok.text != "class" && tok.text != "struct" && tok.text != "union") continue;
      if (i > 0 && prefix[i - 1]->ident("enum")) continue;
      // Collect the qualified name: ident (:: ident)*.
      std::string name;
      std::size_t j = i + 1;
      while (j < prefix.size() && prefix[j]->kind == TokenKind::kIdentifier) {
        if (!name.empty()) name += "::";
        name += prefix[j]->text;
        if (j + 2 < prefix.size() && prefix[j + 1]->punct(':') && prefix[j + 2]->punct(':'))
          j += 3;
        else
          break;
      }
      if (!name.empty()) {
        s.barrier = true;
        s.class_name = name;
        return s;
      }
    }
    for (const Token* tok : prefix)
      if (tok->ident("namespace")) {
        s.barrier = true;
        return s;
      }
    // Lambda introducer anywhere in the statement head: the body runs on
    // its own call stack (thread mains, deferred callbacks), so locks
    // held at the capture site are not held inside.
    for (const Token* tok : prefix)
      if (tok->punct('[')) {
        s.barrier = true;
        return s;
      }
    // Out-of-line member definition: `... Class::method ( ... )` — the
    // body is a plain function body, but locks inside name members of
    // Class.
    for (std::size_t i = 0; i + 1 < prefix.size(); ++i) {
      if (!prefix[i + 1]->punct('(')) continue;
      if (prefix[i]->kind != TokenKind::kIdentifier) break;
      // Walk the qualified-id chain backwards from the method name.
      std::vector<std::string> chain{prefix[i]->text};
      std::size_t j = i;
      while (j >= 3 && prefix[j - 1]->punct(':') && prefix[j - 2]->punct(':') &&
             prefix[j - 3]->kind == TokenKind::kIdentifier) {
        chain.push_back(prefix[j - 3]->text);
        j -= 3;
      }
      if (chain.size() >= 2) {
        std::string name;
        for (std::size_t k = chain.size() - 1; k >= 1; --k) {
          if (!name.empty()) name += "::";
          name += chain[k];
        }
        s.class_name = name;
      }
      break;
    }
    return s;
  };

  for (std::size_t i = 0; i < t.size(); ++i) {
    const Token& tok = t[i];
    if (tok.punct('{')) {
      stack.push_back(classify_scope());
      prefix.clear();
      continue;
    }
    if (tok.punct('}')) {
      if (!stack.empty()) stack.pop_back();
      prefix.clear();
      continue;
    }
    if (tok.punct(';')) {
      prefix.clear();
      continue;
    }
    if (tok.ident("MutexLock") && i + 2 < t.size() &&
        t[i + 1].kind == TokenKind::kIdentifier && t[i + 2].punct('(')) {
      // Extract the constructor argument: tokens through the matching ')'.
      std::string expr;
      int depth = 1;
      std::size_t j = i + 3;
      for (; j < t.size() && depth > 0; ++j) {
        if (t[j].punct('(')) ++depth;
        if (t[j].punct(')') && --depth == 0) break;
        expr += t[j].kind == TokenKind::kString ? "\"" + t[j].text + "\"" : t[j].text;
      }
      if (expr.rfind("this->", 0) == 0) expr = expr.substr(6);
      std::string owner = innermost_class();
      if (expr.rfind("impl_->", 0) == 0) {
        owner = owner.empty() ? "Impl" : owner + "::Impl";
        expr = expr.substr(7);
      }
      // Free-function locks keep the bare expression so the same global
      // mutex unifies across translation units.
      const std::string lock = owner.empty() ? expr : owner + "::" + expr;
      scan->locks.insert(lock);
      ++scan->sites;
      // Held locks: every lock declared in this function body and its
      // nested blocks — collect outward, stopping at the first barrier
      // (whose own locks still count: a lock taken directly in a lambda
      // body is held for later acquisitions in that body).
      for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
        for (const std::string& held : it->locks)
          if (held != lock)
            scan->edges[held].push_back(LockEdge{held, lock, in.path, tok.line});
        if (it->barrier) break;
      }
      if (!stack.empty()) stack.back().locks.push_back(lock);
      prefix.clear();
      i = j;
      continue;
    }
    prefix.push_back(&tok);
    if (prefix.size() > 96) prefix.erase(prefix.begin());
  }
}

void pass_lock_order(const std::vector<Input>& inputs, std::vector<Finding>* findings) {
  LockScan scan;
  for (const Input& in : inputs)
    if (in.cxx) scan_locks(in, &scan);

  // Cycle detection: iterative DFS with tricolor marking; every back edge
  // closes a distinct elementary cycle through the current stack.
  Sink sink{findings, kLockOrder};
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
  std::vector<std::string> path;
  std::set<std::string> reported;

  std::function<void(const std::string&)> dfs = [&](const std::string& node) {
    color[node] = 1;
    path.push_back(node);
    auto it = scan.edges.find(node);
    if (it != scan.edges.end()) {
      for (const LockEdge& e : it->second) {
        if (color[e.to] == 1) {
          // Reconstruct the cycle from the grey stack.
          auto start = std::find(path.begin(), path.end(), e.to);
          std::vector<std::string> cycle(start, path.end());
          // Canonical rotation: smallest lock first, so each cycle is
          // reported (and suppressible) exactly once.
          auto min_it = std::min_element(cycle.begin(), cycle.end());
          std::rotate(cycle.begin(), min_it, cycle.end());
          std::string key = "cycle:";
          for (const std::string& n : cycle) key += n + "->";
          key += cycle.front();
          std::replace(key.begin(), key.end(), ' ', '_');
          if (reported.insert(key).second) {
            std::ostringstream msg;
            msg << "lock-order cycle (potential deadlock): ";
            for (const std::string& n : cycle) msg << n << " -> ";
            msg << cycle.front() << "; acquisition sites:";
            for (std::size_t ci = 0; ci < cycle.size(); ++ci) {
              const std::string& from = cycle[ci];
              const std::string& to = cycle[(ci + 1) % cycle.size()];
              for (const LockEdge& edge : scan.edges[from])
                if (edge.to == to) {
                  msg << " " << edge.from << "->" << edge.to << " at " << edge.file
                      << ":" << edge.line << ";";
                  break;
                }
            }
            sink.emit(e.file, e.line, std::move(key), msg.str());
          }
        } else if (color[e.to] == 0) {
          dfs(e.to);
        }
      }
    }
    path.pop_back();
    color[node] = 2;
  };
  for (const auto& [node, _] : scan.edges)
    if (color[node] == 0) dfs(node);
}

// ---------------------------------------------------------- pass: protocol --
//
// Harvests the serve error-kind taxonomy from its construction sites
// (`err->category = "kind"`, `rejection("kind", ...)`,
// `make_error("kind", ...)` in src/serve) and cross-checks four surfaces:
// the protocol.hpp taxonomy comment, docs/MODEL.md, the serve/router test
// suites, and the router/loadgen handling comparisons. A kind someone
// adds to the code can no longer skip docs, tests, or the taxonomy; a
// kind someone *compares against* without constructing is flagged as a
// phantom (usually a typo in a handler).

struct KindSite {
  std::string file;
  std::size_t line = 0;
};

bool kind_shaped(const std::string& s) {
  if (s.empty() || s.front() == '-' || s.back() == '-') return false;
  for (char c : s)
    if (!((c >= 'a' && c <= 'z') || c == '-')) return false;
  return true;
}

void pass_protocol(const std::vector<Input>& inputs, std::vector<Finding>* findings) {
  std::map<std::string, KindSite> constructed;          // kind → first site
  std::map<std::string, KindSite> handled;              // router/loadgen compares
  const Input* protocol_hpp = nullptr;
  const Input* docs = nullptr;
  std::vector<const Input*> tests;

  for (const Input& in : inputs) {
    if (in.path.ends_with("docs/MODEL.md") || in.path == "MODEL.md") docs = &in;
    if (in.path.ends_with("serve/protocol.hpp")) protocol_hpp = &in;
    if (in.path.find("test_serve") != std::string::npos ||
        in.path.find("test_router") != std::string::npos)
      tests.push_back(&in);
    if (!in.cxx) continue;

    const bool serve_src = in.path.find("src/serve/") != std::string::npos ||
                           in.path.rfind("serve/", 0) == 0;
    const bool handler = in.path.find("serve/router.cpp") != std::string::npos ||
                         in.path.find("serve_loadgen") != std::string::npos;
    if (!serve_src && !handler) continue;

    const std::vector<Token>& t = in.lx.tokens;
    for (std::size_t i = 0; i + 2 < t.size(); ++i) {
      // err->category = "kind"   (but not ==, which is a comparison)
      if (t[i].ident("category") && t[i + 1].punct('=') && !t[i + 2].punct('=') &&
          t[i + 2].kind == TokenKind::kString && kind_shaped(t[i + 2].text)) {
        if (serve_src && !constructed.count(t[i + 2].text))
          constructed[t[i + 2].text] = {in.path, t[i + 2].line};
      }
      // category == "kind"  → handling comparison
      if (t[i].ident("category") && i + 3 < t.size() && t[i + 1].punct('=') &&
          t[i + 2].punct('=') && t[i + 3].kind == TokenKind::kString &&
          kind_shaped(t[i + 3].text)) {
        if (handler && !handled.count(t[i + 3].text))
          handled[t[i + 3].text] = {in.path, t[i + 3].line};
      }
      // rejection("kind", ...) / make_error("kind", ...)
      if ((t[i].ident("rejection") || t[i].ident("make_error")) && t[i + 1].punct('(') &&
          t[i + 2].kind == TokenKind::kString && kind_shaped(t[i + 2].text)) {
        if (serve_src && !constructed.count(t[i + 2].text))
          constructed[t[i + 2].text] = {in.path, t[i + 2].line};
      }
    }
  }

  if (constructed.empty()) return;  // no serve sources among the inputs
  Sink sink{findings, kProtocol};

  for (const auto& [kind, site] : constructed) {
    if (protocol_hpp && !boundary_contains(protocol_hpp->content, kind))
      sink.emit(site.file, site.line, "kind:" + kind + ":taxonomy",
                "error kind \"" + kind +
                    "\" is constructed here but missing from the protocol.hpp "
                    "taxonomy comment");
    if (docs && !boundary_contains(docs->content, kind))
      sink.emit(site.file, site.line, "kind:" + kind + ":docs",
                "error kind \"" + kind + "\" is constructed here but undocumented in " +
                    docs->path);
    bool in_tests = false;
    for (const Input* test : tests) {
      for (const Token& tok : test->lx.tokens)
        if (tok.kind == TokenKind::kString && boundary_contains(tok.text, kind)) {
          in_tests = true;
          break;
        }
      if (in_tests) break;
    }
    if (!tests.empty() && !in_tests)
      sink.emit(site.file, site.line, "kind:" + kind + ":tests",
                "error kind \"" + kind +
                    "\" is constructed here but never exercised (no string literal "
                    "mentions it in test_serve.cpp / test_router.cpp)");
  }

  for (const auto& [kind, site] : handled)
    if (!constructed.count(kind))
      sink.emit(site.file, site.line, "kind:" + kind + ":phantom",
                "handler compares against error kind \"" + kind +
                    "\" which no serve source ever constructs (typo?)");

  // The redirect contract: if shards can answer "redirect", the router
  // must follow it — a router that stops doing so silently breaks the
  // stale-ring heal path even though every unit keeps passing.
  if (constructed.count("redirect") && !handled.empty() && !handled.count("redirect")) {
    const KindSite& site = constructed.at("redirect");
    sink.emit(site.file, site.line, "kind:redirect:unhandled",
              "\"redirect\" errors are constructed but the router/loadgen handling "
              "code never compares against the kind");
  }
}

// ----------------------------------------------------------- pass: metrics --
//
// The MetricsRegistry namespace is stringly typed: a typo in a dotted
// counter name creates a new zero counter instead of failing. This pass
// harvests every `counter("x")` / `double_counter("x")` site, splits them
// into writes (bumps / resolved references) and reads (`.value()`), and
// checks: names are dotted lowercase; each name is written by exactly one
// src/ file (its owner); no two names within one subsystem sit at edit
// distance 1 (the `cache.missses` shape); and every dotted name
// referenced from bench gates, tools, tests, or shell scripts resolves to
// a defined counter.

struct MetricSite {
  std::string file;
  std::size_t line = 0;
};

bool metric_shaped(const std::string& s) {
  if (s.empty() || !(s.front() >= 'a' && s.front() <= 'z')) return false;
  bool dot = false, seg_empty = false;
  char prev = '\0';
  for (char c : s) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_' || c == '.';
    if (!ok) return false;
    if (c == '.') {
      if (prev == '.' || prev == '\0') return false;
      dot = true;
    }
    prev = c;
  }
  (void)seg_empty;
  return dot && prev != '.';
}

/// Extracts metric-shaped dotted names from free text (string literals,
/// shell scripts), skipping file-extension lookalikes ("sim.json").
std::vector<std::string> dotted_candidates(const std::string& text) {
  static const std::set<std::string> kExtensions = {
      "h",  "hpp", "cpp", "cc",  "md",  "sh",  "json", "sock", "log",  "out",
      "tmp", "txt", "csv", "py", "yml", "yaml", "cmake", "opmrec", "gitignore"};
  std::vector<std::string> out;
  std::size_t i = 0;
  auto run_char = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_' || c == '.';
  };
  while (i < text.size()) {
    if (!run_char(text[i])) {
      ++i;
      continue;
    }
    std::size_t j = i;
    while (j < text.size() && run_char(text[j])) ++j;
    std::string cand = text.substr(i, j - i);
    // A run glued to an uppercase/word prefix (BENCH_sim.json) is a
    // fragment of a larger token, not a metric name.
    const bool glued = i > 0 && (std::isalnum(static_cast<unsigned char>(text[i - 1])) ||
                                 text[i - 1] == '_');
    i = j;
    while (!cand.empty() && (cand.front() == '.' || cand.front() == '_')) cand.erase(0, 1);
    while (!cand.empty() && cand.back() == '.') cand.pop_back();
    if (glued || !metric_shaped(cand)) continue;
    const std::size_t last_dot = cand.rfind('.');
    if (kExtensions.count(cand.substr(last_dot + 1))) continue;
    out.push_back(std::move(cand));
  }
  return out;
}

void pass_metrics(const std::vector<Input>& inputs, std::vector<Finding>* findings) {
  Sink sink{findings, kMetrics};
  std::map<std::string, std::vector<MetricSite>> writes;  // src/ write sites
  std::map<std::string, MetricSite> reads;                // any .value() read
  std::vector<std::pair<std::string, MetricSite>> refs;   // free-text references

  for (const Input& in : inputs) {
    if (!in.cxx) {
      if (in.path.ends_with(".sh"))
        for (const std::string& name : dotted_candidates(in.content))
          refs.emplace_back(name, MetricSite{in.path, 0});
      continue;
    }
    const bool in_src = in.path.find("src/") != std::string::npos ||
                        in.path.rfind("src/", 0) == 0;
    const std::vector<Token>& t = in.lx.tokens;
    std::set<std::size_t> registry_literal;  // token indices consumed here
    for (std::size_t i = 0; i + 3 < t.size(); ++i) {
      if (!(t[i].ident("counter") || t[i].ident("double_counter"))) continue;
      if (!t[i + 1].punct('(') || t[i + 2].kind != TokenKind::kString ||
          !t[i + 3].punct(')'))
        continue;
      const std::string& name = t[i + 2].text;
      registry_literal.insert(i + 2);
      const MetricSite site{in.path, t[i + 2].line};
      if (!metric_shaped(name)) {
        sink.emit(site.file, site.line, "name:" + name + ":format",
                  "metric name \"" + name +
                      "\" is not dotted lowercase (subsystem.counter_name)");
        continue;
      }
      const bool is_read = i + 5 < t.size() && t[i + 4].punct('.') && t[i + 5].ident("value");
      if (is_read || !in_src)
        reads.emplace(name, site);
      else
        writes[name].push_back(site);
    }
    // Free-text references: dotted names inside other string literals
    // (bench gate lookups, stats parsing, test fixtures).
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != TokenKind::kString || registry_literal.count(i)) continue;
      for (const std::string& name : dotted_candidates(t[i].text))
        refs.emplace_back(name, MetricSite{in.path, t[i].line});
    }
  }

  if (writes.empty()) return;  // no registry producers among the inputs

  std::set<std::string> subsystems;
  for (const auto& [name, _] : writes) subsystems.insert(name.substr(0, name.find('.')));

  // One owner file per counter.
  for (const auto& [name, sites] : writes) {
    std::set<std::string> files;
    for (const MetricSite& s : sites) files.insert(s.file);
    if (files.size() > 1) {
      std::ostringstream msg;
      msg << "metric \"" << name << "\" is written from " << files.size()
          << " files (one subsystem must own each counter):";
      for (const std::string& f : files) msg << " " << f << ";";
      sink.emit(sites.front().file, sites.front().line, "name:" + name + ":multi-owner",
                msg.str());
    }
  }

  // Near-miss pairs inside one subsystem.
  std::vector<std::string> names;
  for (const auto& [name, _] : writes) names.push_back(name);
  for (std::size_t a = 0; a < names.size(); ++a)
    for (std::size_t b = a + 1; b < names.size(); ++b) {
      if (names[a].substr(0, names[a].find('.')) != names[b].substr(0, names[b].find('.')))
        continue;
      if (edit_distance(names[a], names[b]) <= 1) {
        const MetricSite& site = writes[names[b]].front();
        sink.emit(site.file, site.line, "near-miss:" + names[a] + "~" + names[b],
                  "metric names \"" + names[a] + "\" and \"" + names[b] +
                      "\" differ by one edit — almost certainly a typo");
      }
    }

  // Referenced names (and src-side reads) must resolve.
  auto check_ref = [&](const std::string& name, const MetricSite& site) {
    const std::string subsystem = name.substr(0, name.find('.'));
    if (!subsystems.count(subsystem)) return;  // not a registry namespace
    if (writes.count(name)) return;
    sink.emit(site.file, site.line, "name:" + name + ":undefined",
              "\"" + name + "\" looks like a " + subsystem +
                  ".* metric but no src/ file defines it — reads of it are "
                  "silently zero");
  };
  for (const auto& [name, site] : reads) check_ref(name, site);
  std::set<std::string> seen;  // one finding per (name,file)
  for (const auto& [name, site] : refs)
    if (seen.insert(name + "\n" + site.file).second) check_ref(name, site);
}

// ---------------------------------------------------------- pass: layering --
//
// Include-graph construction over every scanned C++ file. Quoted include
// paths resolve either into src/ modules ("core/sweep.hpp" → module
// `core`) or, when they carry no directory, into the includer's own
// directory ("lint.hpp" in tools/). Two checks: the architecture rule
// table (util is the bottom layer and includes only util; sim never
// includes core/serve/advise; core never serve/advise; advise never
// serve — the advisor must stay servable *through* serve without linking
// against it), and file-level include cycles.

const std::set<std::string>& src_modules() {
  static const std::set<std::string> mods = {"util",  "core",    "sim",
                                             "serve", "advise",  "dense",
                                             "sparse", "kernels", "trace"};
  return mods;
}

/// Forbidden module edges, from → set of targets.
const std::map<std::string, std::set<std::string>>& forbidden_edges() {
  static const std::map<std::string, std::set<std::string>> table = {
      {"util", {"core", "sim", "serve", "advise", "dense", "sparse", "kernels", "trace"}},
      {"sim", {"core", "serve", "advise"}},
      {"core", {"serve", "advise"}},
      {"advise", {"serve"}},
  };
  return table;
}

std::string module_of(const std::string& norm) {
  std::string p = norm;
  const std::size_t src = p.find("src/");
  if (src != std::string::npos && (src == 0 || p[src - 1] == '/')) {
    p = p.substr(src + 4);
    return p.substr(0, p.find('/'));
  }
  return p.substr(0, p.find('/'));  // tools/bench/tests/examples/...
}

void pass_layering(const std::vector<Input>& inputs, std::vector<Finding>* findings) {
  Sink sink{findings, kLayering};
  std::set<std::string> known_files;
  for (const Input& in : inputs)
    if (in.cxx) known_files.insert(in.path);

  std::map<std::string, std::vector<std::pair<std::string, std::size_t>>> file_edges;

  for (const Input& in : inputs) {
    if (!in.cxx) continue;
    const std::string from_module = module_of(in.path);
    const std::string dir = in.path.find('/') == std::string::npos
                                ? std::string()
                                : in.path.substr(0, in.path.rfind('/') + 1);
    for (const lex::Include& inc : in.lx.includes) {
      if (inc.angled) continue;  // system headers are outside the architecture
      const std::string first = inc.path.substr(0, inc.path.find('/'));
      std::string to_module;
      std::string target;
      if (inc.path.find('/') != std::string::npos && src_modules().count(first)) {
        to_module = first;
        // Resolve against the same src/ prefix the includer lives under,
        // so fixture trees rooted anywhere still form a graph.
        const std::size_t src = in.path.find("src/");
        target = (src != std::string::npos ? in.path.substr(0, src + 4) : "src/") + inc.path;
      } else if (inc.path.find('/') == std::string::npos) {
        to_module = from_module;
        target = dir + inc.path;
      } else {
        continue;  // external quoted include (gtest/gtest.h etc.)
      }
      auto fit = forbidden_edges().find(from_module);
      if (fit != forbidden_edges().end() && fit->second.count(to_module))
        sink.emit(in.path, inc.line, "include:" + in.path + "->" + to_module,
                  "layering violation: " + from_module + "/ must not include " +
                      to_module + "/ (\"" + inc.path + "\")");
      if (known_files.count(target))
        file_edges[in.path].emplace_back(target, inc.line);
    }
  }

  // File-level include cycles.
  std::map<std::string, int> color;
  std::vector<std::string> path;
  std::set<std::string> reported;
  std::function<void(const std::string&)> dfs = [&](const std::string& node) {
    color[node] = 1;
    path.push_back(node);
    auto it = file_edges.find(node);
    if (it != file_edges.end()) {
      for (const auto& [to, line] : it->second) {
        if (color[to] == 1) {
          auto start = std::find(path.begin(), path.end(), to);
          std::vector<std::string> cycle(start, path.end());
          auto min_it = std::min_element(cycle.begin(), cycle.end());
          std::rotate(cycle.begin(), min_it, cycle.end());
          std::string key = "cycle:";
          for (const std::string& n : cycle) key += n + "->";
          key += cycle.front();
          if (reported.insert(key).second) {
            std::ostringstream msg;
            msg << "include cycle: ";
            for (const std::string& n : cycle) msg << n << " -> ";
            msg << cycle.front();
            sink.emit(node, line, std::move(key), msg.str());
          }
        } else if (color[to] == 0) {
          dfs(to);
        }
      }
    }
    path.pop_back();
    color[node] = 2;
  };
  for (const auto& [node, _] : file_edges)
    if (color[node] == 0) dfs(node);
}

// ---------------------------------------------------------------- baseline --

struct Baseline {
  // (pass, key) → matched?  Order preserved for stale reporting.
  std::vector<std::tuple<std::string, std::string, bool>> entries;

  static Baseline parse(const std::string& text) {
    Baseline b;
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) {
      const std::size_t hash = line.find('#');
      if (hash != std::string::npos) line.erase(hash);
      std::istringstream ls(line);
      std::string pass, key;
      if (ls >> pass >> key) b.entries.emplace_back(pass, key, false);
    }
    return b;
  }

  bool match(const Finding& f) {
    for (auto& [pass, key, used] : entries)
      if (pass == f.pass && key == f.key) {
        used = true;
        return true;
      }
    return false;
  }
};

}  // namespace

const std::vector<PassInfo>& passes() {
  static const std::vector<PassInfo> table = {
      {kLockOrder, "global lock-order graph over util::MutexLock scopes; fails on cycles"},
      {kProtocol, "serve error-kind taxonomy exhaustive across protocol.hpp, docs, tests, router"},
      {kMetrics, "dotted counter names: one owner, no near-miss typos, all references defined"},
      {kLayering, "include-graph cycles + architecture rules (util ⊄ core/sim/serve/advise, ...)"},
  };
  return table;
}

Report analyze_sources(const std::vector<SourceFile>& sources,
                       const std::string& baseline, const std::string& only_pass) {
  std::vector<Input> inputs;
  inputs.reserve(sources.size());
  for (const SourceFile& s : sources) {
    Input in;
    in.path = normalized(s.path);
    in.content = s.content;
    in.cxx = is_cxx_path(in.path);
    if (in.cxx) in.lx = lex::lex(in.content);
    inputs.push_back(std::move(in));
  }

  Report report;
  using Pass = void (*)(const std::vector<Input>&, std::vector<Finding>*);
  const std::vector<std::pair<const char*, Pass>> order = {
      {kLockOrder, pass_lock_order},
      {kProtocol, pass_protocol},
      {kMetrics, pass_metrics},
      {kLayering, pass_layering},
  };
  std::vector<Finding> raw;
  for (const auto& [id, fn] : order) {
    if (!only_pass.empty() && only_pass != id) continue;
    const std::size_t before = raw.size();
    const auto t0 = std::chrono::steady_clock::now();
    fn(inputs, &raw);
    const auto t1 = std::chrono::steady_clock::now();
    report.timing.push_back(
        PassTiming{id, std::chrono::duration<double>(t1 - t0).count(), raw.size() - before});
  }

  Baseline base = Baseline::parse(baseline);
  for (Finding& f : raw) {
    if (base.match(f))
      ++report.suppressed;
    else
      report.findings.push_back(std::move(f));
  }
  for (const auto& [pass, key, used] : base.entries)
    if (!used)
      report.findings.push_back(
          Finding{"(baseline)", 0, "baseline", "stale:" + pass + ":" + key,
                  "baseline entry \"" + pass + " " + key +
                      "\" matched no finding — remove it (the baseline only shrinks)"});

  std::sort(report.findings.begin(), report.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.pass, a.key) <
                     std::tie(b.file, b.line, b.pass, b.key);
            });
  // Recount per-pass findings post-baseline so the summary matches output.
  for (PassTiming& t : report.timing) {
    t.findings = 0;
    for (const Finding& f : report.findings)
      if (f.pass == t.pass) ++t.findings;
  }
  return report;
}

Report analyze_paths(const std::vector<std::string>& roots,
                     const std::string& baseline_path, const std::string& only_pass) {
  std::vector<SourceFile> sources;
  std::vector<Finding> io;
  std::vector<std::string> files;
  for (const std::string& root : roots) {
    std::error_code ec;
    if (fs::is_regular_file(root, ec)) {
      files.push_back(root);  // explicit file: any extension participates
    } else if (fs::is_directory(root, ec)) {
      for (fs::recursive_directory_iterator it(root, ec), end; it != end;
           it.increment(ec)) {
        if (ec) break;
        if (it->is_regular_file(ec) && is_cxx_path(normalized(it->path().string())))
          files.push_back(it->path().generic_string());
      }
    } else {
      io.push_back(Finding{root, 0, "io", "missing:" + root,
                           "path is not a file or directory"});
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  for (const std::string& file : files) {
    std::ifstream in(file, std::ios::binary);
    std::ostringstream buf;
    if (!in) {
      io.push_back(Finding{file, 0, "io", "unreadable:" + file, "unreadable file"});
      continue;
    }
    buf << in.rdbuf();
    sources.push_back(SourceFile{file, buf.str()});
  }

  std::string baseline;
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path, std::ios::binary);
    if (!in) {
      io.push_back(Finding{baseline_path, 0, "io", "unreadable:" + baseline_path,
                           "cannot read the suppression baseline"});
    } else {
      std::ostringstream buf;
      buf << in.rdbuf();
      baseline = buf.str();
    }
  }

  Report report = analyze_sources(sources, baseline, only_pass);
  report.findings.insert(report.findings.begin(), io.begin(), io.end());
  return report;
}

int run(const std::vector<std::string>& args, std::ostream& out, std::ostream& err) {
  std::vector<std::string> roots;
  std::string baseline_path;
  std::string only_pass;
  bool json = false;
  const char* usage =
      "usage: opm_analyze [--format=text|json] [--baseline=FILE] [--pass=ID]\n"
      "                   [--list-passes] <path>...\n"
      "Token-based cross-file static analysis (docs/MODEL.md §15).\n"
      "Directories are walked for *.hpp/*.h/*.cpp/*.cc; explicitly listed\n"
      "files of any type (docs/MODEL.md, scripts/ci.sh) join as reference\n"
      "text. Exit: 0 clean, 1 findings, 2 usage/IO error.\n";

  for (const std::string& a : args) {
    if (a == "--list-passes") {
      for (const PassInfo& p : passes()) out << p.id << "\t" << p.summary << "\n";
      return 0;
    }
    if (a == "--help" || a == "-h") {
      err << usage;
      return 0;
    }
    if (a.rfind("--format=", 0) == 0) {
      const std::string v = a.substr(9);
      if (v == "json") json = true;
      else if (v == "text") json = false;
      else {
        err << "opm_analyze: unknown format \"" << v << "\"\n" << usage;
        return 2;
      }
      continue;
    }
    if (a.rfind("--baseline=", 0) == 0) {
      baseline_path = a.substr(11);
      continue;
    }
    if (a.rfind("--pass=", 0) == 0) {
      only_pass = a.substr(7);
      bool known = false;
      for (const PassInfo& p : passes()) known = known || only_pass == p.id;
      if (!known) {
        err << "opm_analyze: unknown pass \"" << only_pass << "\"\n" << usage;
        return 2;
      }
      continue;
    }
    if (a.rfind("--", 0) == 0) {
      err << "opm_analyze: unknown flag \"" << a << "\"\n" << usage;
      return 2;
    }
    roots.push_back(a);
  }
  if (roots.empty()) {
    err << usage;
    return 2;
  }

  const Report report = analyze_paths(roots, baseline_path, only_pass);
  const bool io_error = std::any_of(report.findings.begin(), report.findings.end(),
                                    [](const Finding& f) { return f.pass == "io"; });

  if (json) {
    auto esc = [](const std::string& s) {
      std::string o;
      for (char c : s) {
        if (c == '"' || c == '\\') o += '\\';
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          o += buf;
          continue;
        }
        o += c;
      }
      return o;
    };
    out << "{\"findings\":[";
    for (std::size_t i = 0; i < report.findings.size(); ++i) {
      const Finding& f = report.findings[i];
      out << (i ? "," : "") << "{\"file\":\"" << esc(f.file) << "\",\"line\":" << f.line
          << ",\"pass\":\"" << esc(f.pass) << "\",\"key\":\"" << esc(f.key)
          << "\",\"message\":\"" << esc(f.message) << "\"}";
    }
    out << "],\"suppressed\":" << report.suppressed << ",\"passes\":[";
    for (std::size_t i = 0; i < report.timing.size(); ++i) {
      const PassTiming& t = report.timing[i];
      out << (i ? "," : "") << "{\"pass\":\"" << esc(t.pass)
          << "\",\"ms\":" << static_cast<long long>(t.seconds * 1e6) / 1000.0
          << ",\"findings\":" << t.findings << "}";
    }
    out << "]}\n";
  } else {
    for (const Finding& f : report.findings)
      out << f.file << ":" << f.line << ": [" << f.pass << "] " << f.message << "\n";
    for (const PassTiming& t : report.timing) {
      char ms[32];
      std::snprintf(ms, sizeof ms, "%.1f", t.seconds * 1e3);
      out << "opm_analyze: pass " << t.pass << ": " << t.findings << " finding(s) in "
          << ms << " ms\n";
    }
    if (report.findings.empty())
      out << "opm_analyze: clean (" << report.suppressed << " suppressed by baseline)\n";
    else
      out << "opm_analyze: " << report.findings.size() << " finding(s), "
          << report.suppressed << " suppressed by baseline\n";
  }
  if (io_error) return 2;
  return report.findings.empty() ? 0 : 1;
}

}  // namespace opm::analyze
