// opm_advise — ask the roofline-guided tuning advisor one question from
// the command line.
//
//   opm_advise --kernel spmv --platform knl-flat --objective perf
//   opm_advise --kernel gemm --platform broadwell-edram-off --json
//   opm_advise --kernel fft --platform knl-ddr --footprint-mb 512
//   opm_advise --kernel spmv --platform knl-ddr --connect 127.0.0.1:7070
//       --token s3cret
//
// Offline (the default) the tool runs the place → recommend → verify
// pipeline in-process and prints a human-readable report; --json prints
// the deterministic single-line JSON payload instead. With --connect the
// same question is sent as a {"v":2,"type":"advise"} request to a live
// opm_serve/opm_router and the served payload is printed — byte-identical
// to the offline --json output for the same question, which is the
// contract scripts/ci.sh pins.
//
// Sweep knobs (--sweep-workers, --cache-dir, --no-cache, ...) are the
// shared core::resolve_sweep_config surface, so the verification sweeps
// here hit the same result cache as the bench harnesses.

#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <string>

#include "advise/advise.hpp"
#include "core/sweep_config.hpp"
#include "serve/protocol.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/socket.hpp"

namespace {

using namespace opm;
namespace protocol = opm::serve::protocol;

int usage(std::FILE* to) {
  std::fputs(
      "usage: opm_advise --kernel K --platform P [options]\n"
      "\n"
      "  --kernel K        gemm|cholesky|spmv|sptrans|sptrsv|fft|stencil|stream\n"
      "  --platform P      baseline selector: broadwell-edram-{off,on},\n"
      "                    knl-{ddr,cache,flat,hybrid}\n"
      "  --objective O     perf (default) or energy\n"
      "  --footprint-mb N  production problem size in MiB (default: a\n"
      "                    canonical mid-range size for the kernel)\n"
      "  --no-verify       skip stage 3 (the measured confirmation sweep)\n"
      "  --json            print the deterministic JSON payload, not the\n"
      "                    human report\n"
      "  --connect ADDR    ask a live opm_serve/opm_router at ADDR\n"
      "                    (HOST:PORT or unix:PATH) instead of computing\n"
      "                    in-process; always prints the JSON payload\n"
      "  --token S         hello token for a gated --connect listener\n"
      "\n"
      "Sweep knobs (--sweep-workers N, --cache-dir PATH, --no-cache,\n"
      "--cache-max-bytes N, --no-sweep-stats) are shared with the bench\n"
      "harnesses.\n",
      to);
  return to == stdout ? 0 : 2;
}

/// One blocking NDJSON round trip (plus optional hello) to a live server.
struct Client {
  int fd = -1;
  std::string buf;

  ~Client() {
    if (fd >= 0) ::close(fd);
  }

  bool connect(const std::string& address, std::string* error) {
    util::SocketAddress addr;
    if (!util::parse_address(address, &addr, error)) return false;
    fd = util::connect_to(addr, error);
    return fd >= 0;
  }

  bool send_line(std::string line) {
    line.push_back('\n');
    return util::send_all(fd, line);
  }

  bool recv_line(std::string* line) {
    for (;;) {
      const std::size_t pos = buf.find('\n');
      if (pos != std::string::npos) {
        line->assign(buf, 0, pos);
        buf.erase(0, pos + 1);
        return true;
      }
      char chunk[4096];
      const ssize_t n = ::read(fd, chunk, sizeof chunk);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return false;
      buf.append(chunk, static_cast<std::size_t>(n));
    }
  }
};

int run_connected(const std::string& address, const std::string& token,
                  const protocol::Request& req) {
  Client client;
  std::string error;
  if (!client.connect(address, &error)) {
    std::fprintf(stderr, "opm_advise: cannot connect to %s: %s\n", address.c_str(),
                 error.c_str());
    return 1;
  }
  std::string line;
  if (!token.empty()) {
    if (!client.send_line(R"({"v":2,"req_id":"hello","type":"hello","token":")" +
                          util::json_escape(token) + "\"}") ||
        !client.recv_line(&line)) {
      std::fprintf(stderr, "opm_advise: hello handshake failed\n");
      return 1;
    }
    protocol::ResponseView hello;
    if (!protocol::parse_response(line, &hello) || !hello.ok) {
      std::fprintf(stderr, "opm_advise: hello rejected: %s\n", line.c_str());
      return 1;
    }
  }
  if (!client.send_line(protocol::render_request(req)) || !client.recv_line(&line)) {
    std::fprintf(stderr, "opm_advise: server closed the connection\n");
    return 1;
  }
  protocol::ResponseView view;
  if (!protocol::parse_response(line, &view)) {
    std::fprintf(stderr, "opm_advise: unparsable response: %s\n", line.c_str());
    return 1;
  }
  if (!view.ok) {
    std::fprintf(stderr, "opm_advise: server error (%s): %s\n", view.error.category.c_str(),
                 view.error.message.c_str());
    return 1;
  }
  std::fputs(view.payload.c_str(), stdout);
  std::fputc('\n', stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  if (cli.has("help")) return usage(stdout);

  const std::string kernel_name = cli.get("kernel", "");
  const std::string platform = cli.get("platform", "");
  if (kernel_name.empty() || platform.empty()) {
    std::fprintf(stderr, "opm_advise: --kernel and --platform are required\n\n");
    return usage(stderr);
  }

  advise::AdviseRequest req;
  if (!advise::parse_kernel_token(kernel_name, &req.kernel)) {
    std::fprintf(stderr, "opm_advise: unknown kernel \"%s\"\n", kernel_name.c_str());
    return 2;
  }
  sim::Platform resolved;
  if (!advise::resolve_platform(platform, &resolved)) {
    std::fprintf(stderr,
                 "opm_advise: unknown platform \"%s\" (expected "
                 "broadwell-edram-{off,on} or knl-{ddr,cache,flat,hybrid})\n",
                 platform.c_str());
    return 2;
  }
  req.platform = platform;
  const std::string objective = cli.get("objective", "perf");
  if (!advise::parse_objective(objective, &req.objective)) {
    std::fprintf(stderr, "opm_advise: --objective must be perf or energy, not \"%s\"\n",
                 objective.c_str());
    return 2;
  }
  const double footprint_mb = cli.get_double("footprint-mb", 0.0);
  if (footprint_mb < 0.0) {
    std::fprintf(stderr, "opm_advise: --footprint-mb must be >= 0\n");
    return 2;
  }
  req.footprint_bytes = footprint_mb * 1024.0 * 1024.0;
  req.verify = !cli.has("no-verify");

  if (cli.has("connect")) {
    protocol::Request wire;
    wire.type = protocol::RequestType::kAdvise;
    wire.version = 2;
    wire.id = "opm-advise-cli";
    wire.platform_name = platform;
    wire.platform = resolved;
    wire.advise = req;
    return run_connected(cli.get("connect", ""), cli.get("token", ""), wire);
  }

  core::apply_sweep_config(core::resolve_sweep_config(argc, argv));
  try {
    if (cli.has("json")) {
      std::fputs(advise::run_and_render(req).c_str(), stdout);
      std::fputc('\n', stdout);
    } else {
      std::fputs(advise::render_text(advise::run_advise(req)).c_str(), stdout);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "opm_advise: %s\n", e.what());
    return 1;
  }
  return 0;
}
