#pragma once

#include <cstddef>
#include <string>
#include <vector>

/// The shared C++ lexer behind the static-analysis tools (tools/lint.*,
/// tools/analyze.*).
///
/// PR 4's opm_lint carried a private per-line classifier; opm_analyze
/// (docs/MODEL.md §15) needs a real token stream to follow lock scopes,
/// harvest string literals, and build include graphs across files. Both
/// now share this lexer, so "what is a comment", "what is a string", and
/// "where does a raw literal end" have exactly one answer in the repo —
/// and suppression markers inside string literals or block comments can
/// no longer masquerade as real `// opm-lint: allow(...)` hatches.
///
/// This is a lexer, not a preprocessor or parser: no macro expansion, no
/// trigraphs, no line splicing outside string literals. It understands
/// the lexical shapes that matter for cross-file scanning:
///   * line (`//`) and block (`/* */`) comments, including multi-line;
///   * string and char literals with escapes, and raw strings
///     `R"delim(...)delim"` whose delimiter may span many lines of body;
///   * digit separators (`1'000'000` is one number, not a char literal);
///   * `#include "..."` / `#include <...>` directives, captured per file.
///
/// Output is dual-view over the same scan:
///   * a token stream (identifiers, numbers, strings with *decoded-ish*
///     text, char literals, punctuation) with 1-based line numbers — what
///     the semantic passes of opm_analyze consume;
///   * per-line classified text (code with literals collapsed, the
///     string contents, the line-comment text, the raw line) — what the
///     line-oriented lint rules consume.
namespace opm::lex {

enum class TokenKind {
  kIdentifier,  ///< [A-Za-z_][A-Za-z0-9_]*
  kNumber,      ///< integer/float literal (incl. digit separators)
  kString,      ///< text = literal contents (escapes kept verbatim)
  kChar,        ///< text = literal contents
  kPunct,       ///< one operator/punctuation character per token
};

struct Token {
  TokenKind kind = TokenKind::kPunct;
  std::string text;
  std::size_t line = 0;  ///< 1-based line the token starts on

  bool is(TokenKind k, std::string_view t) const { return kind == k && text == t; }
  bool ident(std::string_view t) const { return is(TokenKind::kIdentifier, t); }
  bool punct(char c) const {
    return kind == TokenKind::kPunct && text.size() == 1 && text[0] == c;
  }
};

/// One source line, classified. `code` has comments removed and string /
/// char literals collapsed to `""` / `''`; `strings` concatenates the
/// string-literal contents that appear on the line; `line_comment` holds
/// only `//`-comment text (block-comment interiors are deliberately NOT
/// included — the allow() escape hatch honors line comments alone);
/// `raw` is the verbatim line.
struct Line {
  std::string code;
  std::string strings;
  std::string line_comment;
  std::string raw;
};

/// A captured `#include` directive.
struct Include {
  std::string path;    ///< the text between the quotes / angle brackets
  bool angled = false; ///< true for <...>, false for "..."
  std::size_t line = 0;
};

struct Source {
  std::vector<Token> tokens;
  std::vector<Line> lines;
  std::vector<Include> includes;
};

/// Lexes one in-memory source. Never fails: malformed input (unterminated
/// literals, stray bytes) degrades to best-effort classification rather
/// than an error, because the scanners must keep walking a tree that is
/// mid-refactor.
Source lex(const std::string& content);

}  // namespace opm::lex
