#include <iostream>
#include <string>
#include <vector>

#include "analyze.hpp"

int main(int argc, char** argv) {
  return opm::analyze::run(std::vector<std::string>(argv + 1, argv + argc), std::cout,
                           std::cerr);
}
