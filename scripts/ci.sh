#!/usr/bin/env bash
# Sanitizer CI for the tier-1 test suite.
#
#   ./scripts/ci.sh [thread|address|all]     (default: all)
#
# Builds the full test suite with -DOPM_SANITIZE=<mode> into its own build
# tree (build-tsan / build-asan) and runs ctest. TSan is what guards the
# work-stealing deques in util::ThreadPool; ASan+UBSan guard everything
# else. Any sanitizer report fails the ctest invocation (halt_on_error).
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
mode="${1:-all}"

run_one() {
  local sanitizer="$1" dir="$2"
  echo "== [$sanitizer] configure & build ($dir)"
  cmake -B "$root/$dir" -G Ninja -S "$root" -DOPM_SANITIZE="$sanitizer" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
  cmake --build "$root/$dir"
  echo "== [$sanitizer] ctest"
  TSAN_OPTIONS="halt_on_error=1 history_size=7" \
  ASAN_OPTIONS="halt_on_error=1 detect_leaks=0" \
  UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1" \
    ctest --test-dir "$root/$dir" --output-on-failure -j "$(nproc)"
}

case "$mode" in
  thread)  run_one thread build-tsan ;;
  address) run_one address build-asan ;;
  all)     run_one thread build-tsan
           run_one address build-asan ;;
  *) echo "usage: $0 [thread|address|all]" >&2; exit 2 ;;
esac

echo "ci: sanitizer suite(s) green"
