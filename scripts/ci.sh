#!/usr/bin/env bash
# Static-analysis + sanitizer + cache + serve + perf CI for the tier-1
# test suite.
#
#   ./scripts/ci.sh [static|thread|address|undefined|cache|serve|advise|perf|all]
#   (default: all)
#
# The static job runs FIRST and needs no test execution: it builds only the
# opm_lint and opm_analyze tools, scans src/ bench/ tests/ for
# project-invariant violations (seeded-RNG-only, thread ownership,
# canonical %a serialization, OPM_GUARDED_BY coverage, #pragma once, no
# std::endl), then runs the four cross-file semantic passes (lock-order
# cycles, protocol taxonomy exhaustiveness, metrics-name consistency,
# layering — docs/MODEL.md §15) fail-fast against the checked-in
# suppression baseline, and self-checks that seeded violations still trip
# both tools. When a
# clang++ with -Wthread-safety is available it also compiles the full tree
# with the thread-safety annotations promoted to errors, proving every
# lock acquisition at compile time; without clang the gate is skipped with
# a notice (GCC does not implement the analysis).
#
# Sanitizer jobs build the full test suite with -DOPM_SANITIZE=<mode> into
# their own build trees (build-tsan / build-asan / build-ubsan) and run
# ctest. TSan guards the work-stealing deques in util::ThreadPool;
# ASan+UBSan guard everything else; the standalone UBSan tree isolates UB
# findings from ASan's address-space noise. Any sanitizer report fails the
# ctest invocation (halt_on_error). Sanitizer jobs run with the result
# cache DISABLED (OPM_NO_CACHE=1): a cache hit would short-circuit the
# compute path the sanitizers exist to instrument.
#
# The cache job builds the plain tree, then runs the Table 4/5 summaries
# twice against a scratch cache dir — once cold, once warm — with
# telemetry muted, and diffs the outputs byte for byte. Warm results that
# differ in any byte fail CI.
#
# The serve job exercises the serve tier end to end: the self-contained
# serve_loadgen gates (byte-identity vs offline, >= 4x request
# deduplication, structured overload rejections), the same gates against
# an external server over its Unix socket, a SIGTERM mid-load that must
# drain gracefully — exit 0, no orphaned socket file — and the sharded
# tier: two token-gated opm_serve shards on loopback TCP behind an
# opm_router, a zipf v2 load driven through the router (byte-identity
# gate vs the offline library), and a SIGTERM drain of the whole mesh.
#
# The advise job gates the tuning advisor (src/advise): the
# advise_accuracy harness must report >= 7/8 recommendations per paper
# platform confirmed-or-marginal by the measured sweeps, and the served
# {"type":"advise"} payload from a live 2-shard router must be
# byte-identical to the offline `opm_advise --json` output for the same
# question — the same byte-identity contract the sweep types carry.
#
# The perf job is the statistical perf contract (docs/MODEL.md §12): it
# builds Release, runs every bench harness in --quick mode (sampled
# measurement — warmup, repeats, per-iteration ns samples), and diffs the
# fresh BENCH_<name>.json against the committed baselines in the repo
# root with tools/opm_benchdiff. A metric fails only when its median
# moves beyond max(rel_floor, k·CV) in the harmful direction, so the gate
# tightens exactly as far as the measurement is stable; coverage is also
# gated both ways (a baseline metric gone from the harness, or a harness
# metric absent from the baseline, fails — regenerate the baseline with
# --update-baseline). Harness-internal gates still apply (sim
# behavior-identity + CV-adjusted speedup floor, sampled-sim speedup +
# <=1% extrapolation error, cache >= 10x disk-warm, serve
# dedup/byte-identity); BENCH_micro.json has
# no committed baseline and is schema-validated instead. The sanitizer
# jobs above keep instrumenting the reference-model path too: ctest runs
# test_sim_differential, which drives SetAssociativeCache and
# ReferenceMemorySystem alongside the flat core.
#
# Fail-fast: set -e aborts on the first failing job; the EXIT trap prints
# a summary of which jobs ran and where the run stopped.
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
mode="${1:-all}"

declare -a job_status=()
ci_summary() {
  local rc=$?
  if [ "${#job_status[@]}" -gt 0 ]; then
    echo "ci: summary — ${job_status[*]}"
  fi
  return "$rc"
}
trap ci_summary EXIT

# Marks the job FAIL up front, runs it, then flips the mark to ok — so the
# EXIT-trap summary is truthful even when set -e aborts mid-job.
run_job() {
  local name="$1"; shift
  job_status+=("$name:FAIL")
  "$@"
  job_status[$(( ${#job_status[@]} - 1 ))]="$name:ok"
}

run_static() {
  local dir="build-static"
  echo "== [static] configure & build opm_lint + opm_analyze ($dir)"
  # Compile commands are exported so editor tooling / clang-tidy sessions
  # can piggyback on the CI configure.
  cmake -B "$root/$dir" -G Ninja -S "$root" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
  cmake --build "$root/$dir" --target opm_lint opm_analyze
  echo "== [static] opm_lint src bench tests"
  (cd "$root" && "$root/$dir/tools/opm_lint" src bench tests)
  echo "== [static] linter self-check (seeded violation must be caught)"
  local fixture="$root/$dir/lint-selfcheck"
  rm -rf "$fixture"
  mkdir -p "$fixture/src/core"
  printf 'int f() { return rand(); }\n' > "$fixture/src/core/bad.cpp"
  if (cd "$fixture" && "$root/$dir/tools/opm_lint" src > /dev/null); then
    echo "ci: FAIL — opm_lint exited 0 on a seeded rand() violation" >&2
    exit 1
  fi
  echo "   seeded rand() violation caught (nonzero exit)"
  echo "== [static] opm_analyze (cross-file passes, docs/MODEL.md §15)"
  # Fail-fast: any unsuppressed finding (or stale baseline entry) aborts
  # the job here, before the expensive sanitizer builds. Per-pass timing
  # is printed by the tool itself.
  (cd "$root" && "$root/$dir/tools/opm_analyze" \
      --baseline=tools/analyze_baseline.txt \
      src tools bench tests docs/MODEL.md scripts/ci.sh)
  echo "== [static] analyzer self-check (four seeded violations must be caught)"
  local afix="$root/$dir/analyze-selfcheck"
  rm -rf "$afix"
  mkdir -p "$afix/src/core" "$afix/src/serve" "$afix/src/util" "$afix/docs"
  # One seed per pass: an ABBA lock cycle, an undocumented error kind, a
  # one-edit metric typo, and a util → serve include.
  printf 'void fa() { util::MutexLock a(mu_a); util::MutexLock b(mu_b); }\n' \
      > "$afix/src/core/a.cpp"
  printf 'void fb() { util::MutexLock b(mu_b); util::MutexLock a(mu_a); }\n' \
      > "$afix/src/core/b.cpp"
  printf 'void r() { err->category = "vanished"; }\n' > "$afix/src/serve/server.cpp"
  printf 'no such kind is documented here\n' > "$afix/docs/MODEL.md"
  printf 'void m() { counter("core.hits").add(1); counter("core.hitz").add(1); }\n' \
      > "$afix/src/core/m.cpp"
  printf '#include "serve/server.hpp"\n' > "$afix/src/util/u.cpp"
  local aout
  if aout=$(cd "$afix" && "$root/$dir/tools/opm_analyze" src docs/MODEL.md); then
    echo "ci: FAIL — opm_analyze exited 0 on seeded violations" >&2
    exit 1
  fi
  for pass in lock-order protocol metrics layering; do
    if ! grep -q "\[$pass\]" <<< "$aout"; then
      echo "ci: FAIL — seeded $pass violation not caught; output:" >&2
      echo "$aout" >&2
      exit 1
    fi
  done
  echo "   all four seeded violations caught (nonzero exit, file:line diagnostics)"
  if command -v clang++ > /dev/null 2>&1; then
    echo "== [static] clang -Wthread-safety -Werror full-tree compile"
    local tsdir="build-threadsafety"
    cmake -B "$root/$tsdir" -G Ninja -S "$root" \
          -DCMAKE_CXX_COMPILER=clang++ \
          -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
    cmake --build "$root/$tsdir"
    echo "   thread-safety annotations prove clean under clang"
  else
    echo "== [static] clang++ not found — thread-safety compile gate skipped"
    echo "   (GCC has no -Wthread-safety; annotations compile as no-ops)"
  fi
}

run_one() {
  local sanitizer="$1" dir="$2"
  echo "== [$sanitizer] configure & build ($dir)"
  cmake -B "$root/$dir" -G Ninja -S "$root" -DOPM_SANITIZE="$sanitizer" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
  cmake --build "$root/$dir"
  echo "== [$sanitizer] ctest (result cache disabled)"
  OPM_NO_CACHE=1 \
  TSAN_OPTIONS="halt_on_error=1 history_size=7" \
  ASAN_OPTIONS="halt_on_error=1 detect_leaks=0" \
  UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1" \
    ctest --test-dir "$root/$dir" --output-on-failure -j "$(nproc)"
}

run_cache() {
  local dir="build-cache"
  echo "== [cache] configure & build ($dir)"
  cmake -B "$root/$dir" -G Ninja -S "$root" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
  cmake --build "$root/$dir" --target table4_edram_summary table5_mcdram_summary \
        cache_effectiveness
  local scratch="$root/$dir/ci-cache-scratch"
  rm -rf "$scratch"
  echo "== [cache] cold vs warm byte-for-byte diff (telemetry muted)"
  for b in table4_edram_summary table5_mcdram_summary; do
    "$root/$dir/bench/$b" --cache-dir="$scratch" --no-sweep-stats \
        > "$root/$dir/$b.cold.out"
    "$root/$dir/bench/$b" --cache-dir="$scratch" --no-sweep-stats \
        > "$root/$dir/$b.warm.out"
    if ! cmp "$root/$dir/$b.cold.out" "$root/$dir/$b.warm.out"; then
      echo "ci: FAIL — $b warm output differs from cold output" >&2
      exit 1
    fi
    echo "   $b: cold == warm"
  done
  echo "== [cache] effectiveness gate (>= 10x disk-warm speedup, bit-identical)"
  "$root/$dir/bench/cache_effectiveness" --cache-dir="$scratch"
}

run_serve() {
  local dir="build-serve"
  echo "== [serve] configure & build ($dir)"
  cmake -B "$root/$dir" -G Ninja -S "$root" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
  cmake --build "$root/$dir" --target opm_serve opm_router serve_loadgen
  local scratch="$root/$dir/serve-ci-scratch"
  rm -rf "$scratch" "$scratch-ext"
  echo "== [serve] self-contained gates (byte-identity, coalescing, overload)"
  (cd "$root/$dir" && ./bench/serve_loadgen --cache-dir="$scratch")
  echo "== [serve] external server: duplicate-heavy load over the socket"
  local sock="$root/$dir/opm-serve-ci.sock"
  "$root/$dir/serve/opm_serve" --socket="$sock" --cache-dir="$scratch-ext" \
      --no-sweep-stats &
  local server_pid=$!
  for _ in $(seq 1 100); do [ -S "$sock" ] && break; sleep 0.1; done
  if ! [ -S "$sock" ]; then
    echo "ci: FAIL — opm_serve socket never appeared" >&2
    exit 1
  fi
  (cd "$root/$dir" && ./bench/serve_loadgen --socket="$sock")
  echo "== [serve] SIGTERM mid-load must drain cleanly"
  (cd "$root/$dir" && ./bench/serve_loadgen --socket="$sock" --tolerant --dup=8) &
  local load_pid=$!
  sleep 0.3
  kill -TERM "$server_pid"
  local server_rc=0
  wait "$server_pid" || server_rc=$?
  wait "$load_pid" || true  # tolerant: draining rejections and cut streams are expected
  if [ "$server_rc" -ne 0 ]; then
    echo "ci: FAIL — opm_serve exited $server_rc after SIGTERM (want 0)" >&2
    exit 1
  fi
  if [ -e "$sock" ]; then
    echo "ci: FAIL — orphaned socket file left after drain" >&2
    exit 1
  fi
  echo "   opm_serve drained: exit 0, socket removed"

  echo "== [serve] sharded tier: 2 TCP shards + opm_router, zipf v2 load"
  local token="ci-serve-token" l2="$scratch-l2"
  local -a shard_pids=() shard_ports=()
  local i log port
  for i in 0 1; do
    log="$root/$dir/shard$i.log"
    "$root/$dir/serve/opm_serve" --listen=127.0.0.1:0 --token="$token" \
        --shard-id="$i" --shard-count=2 --cache-dir="$l2" \
        --cache-max-bytes=$((64 * 1024 * 1024)) --no-sweep-stats > "$log" 2>&1 &
    shard_pids+=($!)
    for _ in $(seq 1 100); do
      grep -q 'listening on' "$log" && break
      sleep 0.1
    done
    port="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$log" | head -1)"
    if [ -z "$port" ]; then
      echo "ci: FAIL — shard $i never reported its port (see $log)" >&2
      exit 1
    fi
    shard_ports+=("$port")
    echo "   shard $i on 127.0.0.1:$port"
  done
  local router_log="$root/$dir/router.log"
  "$root/$dir/serve/opm_router" --listen=127.0.0.1:0 --token="$token" \
      --shards="127.0.0.1:${shard_ports[0]},127.0.0.1:${shard_ports[1]}" \
      > "$router_log" 2>&1 &
  local router_pid=$!
  for _ in $(seq 1 100); do
    grep -q 'listening on' "$router_log" && break
    sleep 0.1
  done
  local router_port
  router_port="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$router_log" | head -1)"
  if [ -z "$router_port" ]; then
    echo "ci: FAIL — opm_router never reported its port (see $router_log)" >&2
    exit 1
  fi
  echo "   router on 127.0.0.1:$router_port -> shards ${shard_ports[*]}"
  (cd "$root/$dir" && ./bench/serve_loadgen --connect="127.0.0.1:$router_port" \
      --token="$token" --v2 --zipf --dup=6)
  echo "== [serve] SIGTERM drains the mesh (router first, then shards)"
  local rc=0
  kill -TERM "$router_pid"; wait "$router_pid" || rc=$?
  if [ "$rc" -ne 0 ]; then
    echo "ci: FAIL — opm_router exited $rc after SIGTERM (want 0)" >&2
    exit 1
  fi
  for i in 0 1; do
    rc=0
    kill -TERM "${shard_pids[$i]}"; wait "${shard_pids[$i]}" || rc=$?
    if [ "$rc" -ne 0 ]; then
      echo "ci: FAIL — shard $i exited $rc after SIGTERM (want 0)" >&2
      exit 1
    fi
  done
  echo "   mesh drained: router + 2 shards all exit 0"
}

run_advise() {
  local dir="build-advise"
  echo "== [advise] configure & build ($dir)"
  cmake -B "$root/$dir" -G Ninja -S "$root" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
  cmake --build "$root/$dir" --target advise_accuracy opm_advise_cli opm_serve opm_router
  local scratch="$root/$dir/advise-ci-scratch"
  rm -rf "$scratch" "$scratch-cli"
  echo "== [advise] accuracy gate (>= 7/8 confirmed-or-marginal per platform)"
  (cd "$root/$dir" && ./bench/advise_accuracy --quick --cache-dir="$scratch" \
      --no-sweep-stats --out="$root/$dir/BENCH_advise.json")

  echo "== [advise] e2e: served payload vs offline --json (2 shards + router)"
  local token="ci-advise-token"
  local -a shard_pids=() shard_ports=()
  local i log port
  for i in 0 1; do
    log="$root/$dir/advise-shard$i.log"
    "$root/$dir/serve/opm_serve" --listen=127.0.0.1:0 --token="$token" \
        --shard-id="$i" --shard-count=2 --cache-dir="$scratch" \
        --no-sweep-stats > "$log" 2>&1 &
    shard_pids+=($!)
    for _ in $(seq 1 100); do
      grep -q 'listening on' "$log" && break
      sleep 0.1
    done
    port="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$log" | head -1)"
    if [ -z "$port" ]; then
      echo "ci: FAIL — advise shard $i never reported its port (see $log)" >&2
      exit 1
    fi
    shard_ports+=("$port")
    echo "   shard $i on 127.0.0.1:$port"
  done
  local router_log="$root/$dir/advise-router.log"
  "$root/$dir/serve/opm_router" --listen=127.0.0.1:0 --token="$token" \
      --shards="127.0.0.1:${shard_ports[0]},127.0.0.1:${shard_ports[1]}" \
      > "$router_log" 2>&1 &
  local router_pid=$!
  for _ in $(seq 1 100); do
    grep -q 'listening on' "$router_log" && break
    sleep 0.1
  done
  local router_port
  router_port="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$router_log" | head -1)"
  if [ -z "$router_port" ]; then
    echo "ci: FAIL — opm_router never reported its port (see $router_log)" >&2
    exit 1
  fi
  echo "   router on 127.0.0.1:$router_port -> shards ${shard_ports[*]}"
  local kernel
  for kernel in spmv gemm stream; do
    "$root/$dir/tools/opm_advise" --kernel "$kernel" --platform knl-ddr --json \
        --cache-dir="$scratch-cli" --no-sweep-stats \
        > "$root/$dir/advise-$kernel-offline.json"
    "$root/$dir/tools/opm_advise" --kernel "$kernel" --platform knl-ddr \
        --connect="127.0.0.1:$router_port" --token="$token" \
        > "$root/$dir/advise-$kernel-served.json"
    if ! cmp "$root/$dir/advise-$kernel-offline.json" \
             "$root/$dir/advise-$kernel-served.json"; then
      echo "ci: FAIL — served advise payload differs from offline --json ($kernel)" >&2
      exit 1
    fi
    echo "   $kernel: served == offline (byte-identical)"
  done
  echo "== [advise] SIGTERM drains the mesh (router first, then shards)"
  local rc=0
  kill -TERM "$router_pid"; wait "$router_pid" || rc=$?
  if [ "$rc" -ne 0 ]; then
    echo "ci: FAIL — opm_router exited $rc after SIGTERM (want 0)" >&2
    exit 1
  fi
  for i in 0 1; do
    rc=0
    kill -TERM "${shard_pids[$i]}"; wait "${shard_pids[$i]}" || rc=$?
    if [ "$rc" -ne 0 ]; then
      echo "ci: FAIL — advise shard $i exited $rc after SIGTERM (want 0)" >&2
      exit 1
    fi
  done
  echo "   mesh drained: router + 2 shards all exit 0"
}

run_perf() {
  local dir="build-perf"
  echo "== [perf] configure & build Release ($dir)"
  cmake -B "$root/$dir" -G Ninja -S "$root" \
        -DCMAKE_BUILD_TYPE=Release > /dev/null
  cmake --build "$root/$dir" --target sim_hotpath sweep_engine cache_effectiveness \
        serve_loadgen advise_accuracy micro_bench opm_benchdiff
  local scratch="$root/$dir/perf-cache-scratch"
  rm -rf "$scratch"

  echo "== [perf] quick-mode sampled runs (BENCH_<name>.json artifacts in $dir)"
  # --sample fast arms the WindowSampler gates inside the harness: sampled
  # speedup >= 3x over the flat core AND extrapolated traffic within 1% of
  # the exact report, per platform config — on top of the trajectory diff.
  "$root/$dir/bench/sim_hotpath" --quick --sample fast --out="$root/$dir/BENCH_sim.json"
  "$root/$dir/bench/sweep_engine" --quick --out="$root/$dir/BENCH_sweep.json"
  "$root/$dir/bench/cache_effectiveness" --quick --cache-dir="$scratch" \
      --out="$root/$dir/BENCH_cache.json"
  (cd "$root/$dir" && ./bench/serve_loadgen --quick --cache-dir="$scratch-serve" \
      --out="$root/$dir/BENCH_serve.json")
  # Router scaling: in-process router over 1 vs 2 single-worker shards on
  # a zipf mix. The harness's own gate is hardware-aware (>= 1.7x with
  # >= 4 hardware threads, sanity floor 0.75x on the shared single-core
  # CI runner); the benchdiff below tracks the recorded trajectory either
  # way.
  (cd "$root/$dir" && ./bench/serve_loadgen --router-bench --quick \
      --rb-out="$root/$dir/BENCH_router.json")
  "$root/$dir/bench/advise_accuracy" --quick --cache-dir="$scratch-advise" \
      --no-sweep-stats --out="$root/$dir/BENCH_advise.json"

  echo "== [perf] trajectory diff vs committed baselines (CV-aware tolerance)"
  # The CI container is a single shared hardware thread: measured
  # run-to-run drift of quick-mode throughput medians is ~±25% even
  # back-to-back, more than the in-run CV predicts. The floor reflects
  # that reality; k·CV widens the band further for metrics that are noisy
  # within a run. A real regression (the harness tests inject 50%) still
  # clears both. Tighten on dedicated hardware.
  local tolerance=(--k=4 --rel-floor=0.30)
  local bench
  for bench in sim sweep cache serve router advise; do
    echo "-- opm_benchdiff BENCH_$bench.json"
    "$root/$dir/tools/opm_benchdiff" "${tolerance[@]}" "$root/BENCH_$bench.json" \
        "$root/$dir/BENCH_$bench.json"
  done

  echo "== [perf] micro_bench --quick (schema-validated, no committed baseline)"
  "$root/$dir/bench/micro_bench" --quick --out="$root/$dir/BENCH_micro.json"
  "$root/$dir/tools/opm_benchdiff" --validate "$root/$dir/BENCH_micro.json"
  echo "   baseline update: tools/opm_benchdiff --update-baseline BENCH_<x>.json <fresh>"
}

case "$mode" in
  static)    run_job static run_static ;;
  thread)    run_job thread run_one thread build-tsan ;;
  address)   run_job address run_one address build-asan ;;
  undefined) run_job undefined run_one undefined build-ubsan ;;
  cache)     run_job cache run_cache ;;
  serve)     run_job serve run_serve ;;
  advise)    run_job advise run_advise ;;
  perf)      run_job perf run_perf ;;
  all)       run_job static run_static
             run_job thread run_one thread build-tsan
             run_job address run_one address build-asan
             run_job undefined run_one undefined build-ubsan
             run_job cache run_cache
             run_job serve run_serve
             run_job advise run_advise
             run_job perf run_perf ;;
  *) echo "usage: $0 [static|thread|address|undefined|cache|serve|advise|perf|all]" >&2; exit 2 ;;
esac

echo "ci: suite(s) green"
