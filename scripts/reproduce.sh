#!/usr/bin/env bash
# Reproduce every artifact of the paper and collect the outputs.
#
#   ./scripts/reproduce.sh [--quick] [results_dir]
#
# Builds the project, runs the full test suite, then executes every bench
# harness (one per table/figure plus the ablations) and the examples,
# writing each output to its own file under results_dir (default:
# ./results). Sweep harnesses print the parallel engine's SweepStats
# telemetry (tasks, steals, busy/wall time) into their outputs.
#
# --quick: CI only — runs the static checks (opm_lint + thread-safety
# annotations) and the sanitizer matrix via scripts/ci.sh, skipping the
# artifact sweep.
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"

if [[ "${1:-}" == "--quick" ]]; then
  echo "== quick mode: static checks (opm_lint, thread-safety) + sanitizer matrix"
  exec "$root/scripts/ci.sh" all
fi

results="${1:-$root/results}"
mkdir -p "$results"

echo "== configure & build"
cmake -B "$root/build" -G Ninja -S "$root"
cmake --build "$root/build"

echo "== tests"
ctest --test-dir "$root/build" | tee "$results/tests.txt"

echo "== bench harnesses (tables, figures, ablations)"
for b in "$root"/build/bench/*; do
  name="$(basename "$b")"
  echo "  -> $name"
  "$b" > "$results/$name.txt" 2>&1
done

echo "== examples"
for e in quickstart opm_advisor sparse_structure_study what_if_machine matrix_report; do
  echo "  -> $e"
  "$root/build/examples/$e" > "$results/example_$e.txt" 2>&1
done

echo "done: outputs in $results"
