// matrix_report: the procurement-specialist workflow — feed your own
// Matrix Market file (or a named synthetic family) and get the full OPM
// report for it: structural stats, measured reuse profile, the level-set
// parallelism signature, and predicted SpMV/SpTRSV throughput on every
// platform/mode of the paper, ending in the Section 6 recommendation.
//
//   ./build/examples/matrix_report my_matrix.mtx
//   ./build/examples/matrix_report --family=rmat --rows=100000 --degree=12
#include <cmath>
#include <iostream>
#include <vector>

#include "core/advisor.hpp"
#include "kernels/csr5.hpp"
#include "kernels/model.hpp"
#include "kernels/spmv.hpp"
#include "kernels/sptrsv.hpp"
#include "sparse/generators.hpp"
#include "sparse/mm_io.hpp"
#include "sparse/stats.hpp"
#include "trace/sampler.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"
#include "util/units.hpp"

namespace {
opm::sparse::Csr load_matrix(const opm::util::Cli& cli) {
  using namespace opm;
  if (!cli.positional().empty())
    return sparse::coo_to_csr(sparse::read_matrix_market_file(cli.positional().front()));

  const std::string family = cli.get("family", "rmat");
  const auto rows = static_cast<sparse::index_t>(cli.get_int("rows", 100000));
  const double degree = cli.get_double("degree", 12.0);
  if (family == "banded")
    return sparse::make_banded(rows, static_cast<sparse::index_t>(degree), degree, 1);
  if (family == "random") return sparse::make_random_uniform(rows, degree, 1);
  if (family == "poisson2d")
    return sparse::make_poisson2d(static_cast<sparse::index_t>(std::sqrt(double(rows))));
  return sparse::make_rmat(rows, degree, 1);
}
}  // namespace

int main(int argc, char** argv) {
  using namespace opm;
  const util::Cli cli(argc, argv);
  const sparse::Csr a = load_matrix(cli);
  const sparse::MatrixStats stats = sparse::compute_stats(a);

  std::cout << "matrix: " << stats.rows << " x " << stats.cols << ", " << stats.nnz
            << " nonzeros (avg " << util::format_fixed(stats.avg_row_nnz, 1)
            << "/row, max " << stats.max_row_nnz << ", cv "
            << util::format_fixed(stats.row_cv, 2) << ")\n"
            << "SpMV footprint: "
            << util::format_bytes(static_cast<std::uint64_t>(stats.spmv_footprint_bytes))
            << ", mean band distance: " << util::format_fixed(stats.mean_band, 0) << "\n";

  // Measured locality: sampled reuse profile of the real SpMV stream.
  std::vector<double> x(static_cast<std::size_t>(a.cols), 1.0);
  std::vector<double> y(static_cast<std::size_t>(a.rows));
  trace::SampledReuseAnalyzer reuse(stats.nnz > 4'000'000 ? 0.05 : 1.0);
  kernels::spmv_csr_instrumented(a, x, y, reuse);
  const double hit_l3 = reuse.estimated_hit_rate(6 * util::MiB);
  const double hit_edram = reuse.estimated_hit_rate(134 * util::MiB);
  const double locality =
      1.0 - std::min(1.0, stats.mean_band / (0.35 * static_cast<double>(stats.rows)));
  std::cout << "measured hit rates: L3-sized " << util::format_fixed(hit_l3, 3)
            << ", eDRAM-sized " << util::format_fixed(hit_edram, 3)
            << "; locality score " << util::format_fixed(locality, 2) << "\n";

  // Level-set signature for SpTRSV.
  const sparse::Csr lower = sparse::lower_triangle_with_diagonal(a, 2.0);
  const kernels::LevelSchedule schedule = kernels::build_level_schedule(lower);
  std::cout << "SpTRSV levels: " << schedule.levels() << " (avg parallelism "
            << util::format_fixed(schedule.average_parallelism(), 1) << ")\n";

  // Predictions across all platform/mode combinations.
  const kernels::SpmvShape mv{.rows = static_cast<double>(stats.rows),
                              .nnz = static_cast<double>(stats.nnz),
                              .locality = locality,
                              .row_cv = stats.row_cv};
  const kernels::SptrsvShape tr{.rows = static_cast<double>(stats.rows),
                                .nnz = static_cast<double>(stats.nnz),
                                .locality = locality,
                                .avg_parallelism = schedule.average_parallelism(),
                                .levels = static_cast<double>(schedule.levels())};
  std::cout << "\n" << util::pad("platform / mode", 30) << util::pad("SpMV", 12)
            << util::pad("SpTRSV", 12) << "\n";
  std::vector<sim::Platform> platforms = {
      sim::broadwell(sim::EdramMode::kOff), sim::broadwell(sim::EdramMode::kOn),
      sim::knl(sim::McdramMode::kOff), sim::knl(sim::McdramMode::kCache),
      sim::knl(sim::McdramMode::kFlat), sim::knl(sim::McdramMode::kHybrid)};
  for (const auto& p : platforms) {
    const double g_mv = kernels::predict(p, kernels::spmv_model(p, mv)).gflops;
    const double g_tr = kernels::predict(p, kernels::sptrsv_model(p, tr)).gflops;
    std::cout << util::pad(p.name.substr(0, 9) + " " + p.mode_label, 30)
              << util::pad(util::format_fixed(g_mv, 2) + " GF/s", 12)
              << util::pad(util::format_fixed(g_tr, 2) + " GF/s", 12) << "\n";
  }

  // Section 6 recommendation for this matrix.
  core::AppProfile app;
  app.footprint_bytes = static_cast<double>(stats.spmv_footprint_bytes);
  app.hot_set_bytes = 8.0 * static_cast<double>(stats.rows);  // the x vector
  app.latency_bound = schedule.average_parallelism() < 64.0;
  const auto rec = core::advise_mcdram(sim::knl(sim::McdramMode::kFlat), app);
  std::cout << "\nrecommended KNL mode for this matrix: " << sim::to_string(rec.mode)
            << "\n  " << rec.reason << "\n";
  return 0;
}
