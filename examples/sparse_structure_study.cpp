// sparse_structure_study: how a matrix's nonzero structure decides what
// an OPM buys you — the paper's Figures 9-11/20-22 story on live data.
//
// Materializes one matrix per structural family, runs the *real* SpMV and
// SpTRSV kernels, measures the exact reuse-distance profile of the access
// stream, and compares hit rates at the L3/eDRAM capacities with the
// analytical model's prediction.
#include <algorithm>
#include <iostream>
#include <vector>

#include "kernels/model.hpp"
#include "kernels/spmv.hpp"
#include "kernels/sptrsv.hpp"
#include "sparse/collection.hpp"
#include "sparse/stats.hpp"
#include "trace/reuse.hpp"
#include "util/format.hpp"
#include "util/units.hpp"

int main() {
  using namespace opm;
  const sim::Platform off = sim::broadwell(sim::EdramMode::kOff);
  const sim::Platform on = sim::broadwell(sim::EdramMode::kOn);

  std::cout << util::pad("family", 11) << util::pad("rows", 9) << util::pad("nnz", 10)
            << util::pad("hit@L3", 9) << util::pad("hit@eDRAM", 11)
            << util::pad("SpMV spd", 10) << util::pad("SpTRSV spd", 11)
            << util::pad("levels", 8) << "\n";

  const auto suite = sparse::SyntheticCollection::test_suite(64, 60000);
  std::vector<sparse::Family> seen;
  for (std::size_t i = 0; i < suite.size(); ++i) {
    const auto& d = suite.descriptor(i);
    if (std::find(seen.begin(), seen.end(), d.family) != seen.end()) continue;
    seen.push_back(d.family);

    const sparse::Csr a = suite.materialize(i);
    const sparse::MatrixStats stats = sparse::compute_stats(a);

    // Real SpMV, profiled exactly.
    std::vector<double> x(static_cast<std::size_t>(a.cols), 1.0);
    std::vector<double> y(static_cast<std::size_t>(a.rows));
    trace::ReuseDistanceAnalyzer reuse;
    kernels::spmv_csr_instrumented(a, x, y, reuse);
    const double hit_l3 = reuse.hit_rate(6 * util::MiB);
    const double hit_edram = reuse.hit_rate(134 * util::MiB);

    // Real SpTRSV on the lower triangle; its level count is the
    // structure's parallelism signature.
    const sparse::Csr l = sparse::lower_triangle_with_diagonal(a, 2.0);
    const kernels::LevelSchedule schedule = kernels::build_level_schedule(l);

    // Model-predicted eDRAM speedups for this structure.
    const kernels::SpmvShape mv{.rows = static_cast<double>(stats.rows),
                                .nnz = static_cast<double>(stats.nnz),
                                .locality = d.locality,
                                .row_cv = stats.row_cv};
    const double mv_speedup = kernels::predict(on, kernels::spmv_model(on, mv)).gflops /
                              kernels::predict(off, kernels::spmv_model(off, mv)).gflops;
    const kernels::SptrsvShape tr{.rows = static_cast<double>(stats.rows),
                                  .nnz = static_cast<double>(stats.nnz),
                                  .locality = d.locality,
                                  .avg_parallelism = schedule.average_parallelism(),
                                  .levels = static_cast<double>(schedule.levels())};
    const double tr_speedup = kernels::predict(on, kernels::sptrsv_model(on, tr)).gflops /
                              kernels::predict(off, kernels::sptrsv_model(off, tr)).gflops;

    std::cout << util::pad(sparse::to_string(d.family), 11)
              << util::pad(std::to_string(stats.rows), 9)
              << util::pad(std::to_string(stats.nnz), 10)
              << util::pad(util::format_fixed(hit_l3, 3), 9)
              << util::pad(util::format_fixed(hit_edram, 3), 11)
              << util::pad(util::format_speedup(mv_speedup), 10)
              << util::pad(util::format_speedup(tr_speedup), 11)
              << util::pad(std::to_string(schedule.levels()), 8) << "\n";
  }

  std::cout << "\nreading: high-locality families (banded, tridiag+) hit upper caches and\n"
               "gain least from eDRAM; scattered families (rmat, random) live in the eDRAM\n"
               "effective region; level counts explain which structures parallelize SpTRSV\n"
               "(few wide levels) versus serialize it (one row per level).\n";
  return 0;
}
