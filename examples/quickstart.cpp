// Quickstart: the full pipeline on one kernel.
//
// 1. Build a simulated OPM platform (Broadwell with eDRAM).
// 2. Run a real SpMV on a real synthetic matrix (correctness).
// 3. Stream its exact address trace through the trace-driven cache
//    simulator and read the per-tier traffic.
// 4. Predict throughput with the analytical model on both eDRAM modes and
//    see the eDRAM effective region.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <iostream>
#include <vector>

#include "kernels/csr5.hpp"
#include "kernels/model.hpp"
#include "kernels/spmv.hpp"
#include "sim/memory_system.hpp"
#include "sim/platform.hpp"
#include "sparse/generators.hpp"
#include "sparse/stats.hpp"
#include "trace/recorder.hpp"
#include "util/format.hpp"

int main() {
  using namespace opm;

  // --- 1. a platform (paper Table 3, tuning per Table 1) ----------------
  const sim::Platform off = sim::broadwell(sim::EdramMode::kOff);
  const sim::Platform on = sim::broadwell(sim::EdramMode::kOn);
  std::cout << "platform: " << on.name << ", DP peak "
            << util::format_gflops(on.dp_peak_flops) << ", eDRAM "
            << util::format_bytes(on.tiers.back().geometry.capacity) << " at "
            << util::format_bandwidth(on.tiers.back().bandwidth) << "\n";

  // --- 2. a real kernel on real data ------------------------------------
  const sparse::Csr a = sparse::make_banded(20000, 16, 12.0, /*seed=*/42);
  const sparse::MatrixStats stats = sparse::compute_stats(a);
  std::vector<double> x(static_cast<std::size_t>(a.cols), 1.0);
  std::vector<double> y_csr(static_cast<std::size_t>(a.rows));
  std::vector<double> y_csr5(static_cast<std::size_t>(a.rows));
  kernels::spmv_csr(a, x, y_csr);
  kernels::Csr5Matrix::build(a).spmv(x, y_csr5);
  double diff = 0.0;
  for (std::size_t i = 0; i < y_csr.size(); ++i)
    diff = std::max(diff, std::abs(y_csr[i] - y_csr5[i]));
  std::cout << "\nmatrix: " << stats.rows << " rows, " << stats.nnz << " nnz, footprint "
            << util::format_bytes(static_cast<std::uint64_t>(stats.spmv_footprint_bytes))
            << "; CSR vs CSR5 max diff " << diff << "\n";

  // --- 3. exact trace through the simulated hierarchy -------------------
  sim::MemorySystem machine(on);
  trace::SystemRecorder recorder(machine);
  for (int iteration = 0; iteration < 2; ++iteration)
    kernels::spmv_csr_instrumented(a, x, y_csr, recorder);
  std::cout << "\ntrace-driven traffic (2 SpMV iterations):\n";
  for (const auto& tier : machine.report().tiers)
    std::cout << "  " << util::pad(tier.name, 10) << util::format_bytes(tier.bytes_served)
              << " served\n";
  for (const auto& dev : machine.report().devices)
    std::cout << "  " << util::pad(dev.name, 10) << util::format_bytes(dev.bytes_served)
              << " served\n";

  // --- 4. analytical prediction across modes ----------------------------
  const kernels::SpmvShape shape{.rows = static_cast<double>(stats.rows),
                                 .nnz = static_cast<double>(stats.nnz),
                                 .locality = 0.95,  // banded: near-diagonal gathers
                                 .row_cv = stats.row_cv};
  const auto p_off = kernels::predict(off, kernels::spmv_model(off, shape));
  const auto p_on = kernels::predict(on, kernels::spmv_model(on, shape));
  std::cout << "\npredicted SpMV throughput:\n"
            << "  w/o eDRAM: " << util::format_fixed(p_off.gflops, 2) << " GFlop/s (bound by "
            << p_off.timing.bound_by << ")\n"
            << "  w/  eDRAM: " << util::format_fixed(p_on.gflops, 2) << " GFlop/s (bound by "
            << p_on.timing.bound_by << ")\n"
            << "  speedup:   " << util::format_speedup(p_on.gflops / p_off.gflops) << "\n";
  return 0;
}
