// opm_advisor: the paper's Section 6 guidelines as an interactive tool.
//
// Give it your application's data size, hot-working-set size and
// latency-boundedness; it recommends the OPM configuration and shows the
// stepping-model curve your footprint lands on.
//
//   ./build/examples/opm_advisor --footprint-gb=24 --hot-gb=4
//   ./build/examples/opm_advisor --footprint-mb=64 --perf-gain=0.2
//   ./build/examples/opm_advisor --footprint-gb=32 --latency-bound
#include <iostream>

#include "core/advisor.hpp"
#include "core/stepping.hpp"
#include "sim/platform.hpp"
#include "util/ascii_plot.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  using namespace opm;
  const util::Cli cli(argc, argv);

  core::AppProfile app;
  app.footprint_bytes = cli.get_double("footprint-gb", 0.0) * static_cast<double>(util::GiB);
  if (app.footprint_bytes == 0.0)
    app.footprint_bytes = cli.get_double("footprint-mb", 64.0) * static_cast<double>(util::MiB);
  app.hot_set_bytes = cli.get_double("hot-gb", 0.0) * static_cast<double>(util::GiB);
  if (app.hot_set_bytes == 0.0) app.hot_set_bytes = app.footprint_bytes / 4.0;
  app.latency_bound = cli.has("latency-bound");
  app.expected_perf_gain = cli.get_double("perf-gain", 0.15);
  app.expected_power_increase = cli.get_double("power-cost", 0.086);

  std::cout << "application profile: footprint "
            << util::format_bytes(static_cast<std::uint64_t>(app.footprint_bytes))
            << ", hot set " << util::format_bytes(static_cast<std::uint64_t>(app.hot_set_bytes))
            << (app.latency_bound ? ", latency-bound" : ", bandwidth-bound") << "\n";

  // --- KNL / MCDRAM advice ------------------------------------------------
  const sim::Platform knl_flat = sim::knl(sim::McdramMode::kFlat);
  const core::McdramRecommendation mcdram = core::advise_mcdram(knl_flat, app);
  std::cout << "\nKNL MCDRAM recommendation: " << sim::to_string(mcdram.mode) << "\n  why: "
            << mcdram.reason << "\n";

  // --- Broadwell / eDRAM advice -------------------------------------------
  const sim::Platform brd_on = sim::broadwell(sim::EdramMode::kOn);
  const core::EdramRecommendation edram = core::advise_edram(brd_on, app);
  std::cout << "\nBroadwell eDRAM recommendation:\n"
            << "  for performance: " << (edram.enable_for_performance ? "enable" : "disable")
            << "\n  for energy:      " << (edram.enable_for_energy ? "enable" : "disable")
            << " (Eq.1 energy ratio " << util::format_fixed(edram.energy_ratio, 3) << ")\n"
            << "  why: " << edram.reason << "\n";
  const core::EffectiveRegion per = core::edram_effective_region(brd_on);
  std::cout << "  eDRAM performance-effective region: "
            << util::format_bytes(static_cast<std::uint64_t>(per.lo_bytes)) << " .. "
            << util::format_bytes(static_cast<std::uint64_t>(per.hi_bytes))
            << (per.contains(app.footprint_bytes) ? "  <- your footprint is inside"
                                                  : "  <- your footprint is outside")
            << "\n";

  // --- where the footprint lands on the stepping curve ---------------------
  std::vector<util::Series> curves;
  for (const auto& mode : {sim::McdramMode::kOff, sim::McdramMode::kCache,
                           sim::McdramMode::kFlat, sim::McdramMode::kHybrid}) {
    const sim::Platform p = sim::knl(mode);
    const auto curve = core::sweep_footprint(p, core::schematic_kernel(p, 0.3),
                                             app.footprint_bytes / 64.0,
                                             app.footprint_bytes * 8.0, 96, p.mode_label);
    util::Series s{p.mode_label, {}, {}};
    for (std::size_t i = 0; i < curve.footprint_bytes.size(); ++i) {
      s.x.push_back(curve.footprint_bytes[i] / static_cast<double>(util::MiB));
      s.y.push_back(curve.gflops[i]);
    }
    curves.push_back(std::move(s));
  }
  std::cout << "\nKNL stepping curves around your footprint ("
            << util::format_bytes(static_cast<std::uint64_t>(app.footprint_bytes)) << "):\n"
            << util::render_line_plot(curves, 72, 14, true, "footprint [MB]", "GFlop/s");
  return 0;
}
