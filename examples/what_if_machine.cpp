// what_if_machine: architectural design exploration (the paper's Figure 30
// use case) — how would the kernels behave if the OPM were bigger, faster,
// or absent?
//
//   ./build/examples/what_if_machine --capacity-scale=2 --bandwidth-scale=1.5
//   ./build/examples/what_if_machine --dump-config > my_machine.cfg
//   (edit my_machine.cfg) ./build/examples/what_if_machine --config=my_machine.cfg
#include <iostream>
#include <vector>

#include "core/roofline.hpp"
#include "core/stepping.hpp"
#include "kernels/stencil.hpp"
#include "kernels/stream.hpp"
#include "sim/config_io.hpp"
#include "sim/platform.hpp"
#include "util/ascii_plot.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  using namespace opm;
  const util::Cli cli(argc, argv);
  const double cap_scale = cli.get_double("capacity-scale", 2.0);
  const double bw_scale = cli.get_double("bandwidth-scale", 2.0);

  const sim::Platform base = sim::broadwell(sim::EdramMode::kOn);
  if (cli.has("dump-config")) {
    // Emit an editable description of the baseline machine and exit; the
    // edited file comes back via --config.
    std::cout << sim::to_config(base);
    return 0;
  }
  const sim::Platform modified = cli.has("config")
                                     ? sim::load_platform_file(cli.get("config", ""))
                                     : core::scale_opm(base, cap_scale, bw_scale);

  std::cout << "hypothetical machine: eDRAM "
            << util::format_bytes(modified.tiers.back().geometry.capacity) << " at "
            << util::format_bandwidth(modified.tiers.back().bandwidth) << " (baseline "
            << util::format_bytes(base.tiers.back().geometry.capacity) << " at "
            << util::format_bandwidth(base.tiers.back().bandwidth) << ")\n";

  // Roofline shift.
  const auto r_base = core::build_roofline(base);
  const auto r_mod = core::build_roofline(modified);
  std::cout << "\nroofline ridge point moves " << util::format_fixed(r_base.ridge_point_opm(), 2)
            << " -> " << util::format_fixed(r_mod.ridge_point_opm(), 2) << " flop/byte\n";

  // Stream stepping curves: capacity moves the peak right, bandwidth up.
  std::vector<util::Series> curves;
  for (const auto* p : {&base, &modified}) {
    const auto factory = [p](double fp) { return kernels::stream_model(*p, fp / 24.0); };
    const auto curve = core::sweep_footprint(*p, factory, 1.0 * util::MiB, 4.0 * util::GiB, 112);
    util::Series s{p == &base ? "baseline" : "what-if", {}, {}};
    for (std::size_t i = 0; i < curve.footprint_bytes.size(); ++i) {
      s.x.push_back(curve.footprint_bytes[i] / static_cast<double>(util::MiB));
      s.y.push_back(curve.gflops[i]);
    }
    curves.push_back(std::move(s));
  }
  std::cout << "\nStream (TRIAD):\n"
            << util::render_line_plot(curves, 72, 14, true, "footprint [MB]", "GFlop/s");

  // Per-kernel deltas at a representative working point.
  std::cout << "Stencil at 512^3 cells: "
            << util::format_fixed(
                   kernels::predict(base, kernels::stencil_model(base, 512)).gflops, 1)
            << " -> "
            << util::format_fixed(
                   kernels::predict(modified, kernels::stencil_model(modified, 512)).gflops, 1)
            << " GFlop/s\n";
  std::cout << "\n(The paper's Figure 30: capacity scaling shifts the OPM cache peak along\n"
               "the footprint axis; bandwidth scaling amplifies it.)\n";
  return 0;
}
